//! Device-latency emulation for serving experiments.
//!
//! [`ThrottledBlockStore`] wraps any [`BlockStore`] and sleeps for a fixed
//! duration on every block transfer, modelling a storage device whose
//! per-block access time dwarfs CPU work — the regime the paper's I/O cost
//! model assumes. The serving benchmarks (`exp_serve`) use it to measure
//! how much concurrent query workers overlap device waits: while one
//! worker sleeps in a miss, others keep draining the queue, so throughput
//! scales with workers even on a single CPU.
//!
//! The sleep happens *inside* the store, i.e. under whatever lock the
//! buffer pool holds while servicing a miss — deliberately so: that is
//! exactly where a real positioned read would block. When the wrapped
//! store supports shared reads, the throttled read does too: concurrent
//! misses then sleep under the pool's read lock simultaneously, modelling
//! a device with internal parallelism (command queueing).

use crate::block::BlockStore;
use crate::error::StorageError;
use std::time::Duration;

/// A [`BlockStore`] wrapper that sleeps on every read and write, emulating
/// per-block device latency.
pub struct ThrottledBlockStore<S: BlockStore> {
    inner: S,
    read_latency: Duration,
    write_latency: Duration,
}

impl<S: BlockStore> ThrottledBlockStore<S> {
    /// Wraps `inner`, sleeping `read_latency` per block read and
    /// `write_latency` per block write.
    pub fn new(inner: S, read_latency: Duration, write_latency: Duration) -> Self {
        ThrottledBlockStore {
            inner,
            read_latency,
            write_latency,
        }
    }

    /// Wraps `inner` with the same latency for reads and writes.
    pub fn symmetric(inner: S, latency: Duration) -> Self {
        Self::new(inner, latency, latency)
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: BlockStore> BlockStore for ThrottledBlockStore<S> {
    fn block_capacity(&self) -> usize {
        self.inner.block_capacity()
    }

    fn num_blocks(&self) -> usize {
        self.inner.num_blocks()
    }

    fn try_read_block(&mut self, id: usize, buf: &mut [f64]) -> Result<(), StorageError> {
        if !self.read_latency.is_zero() {
            std::thread::sleep(self.read_latency);
        }
        self.inner.try_read_block(id, buf)
    }

    fn try_write_block(&mut self, id: usize, buf: &[f64]) -> Result<(), StorageError> {
        if !self.write_latency.is_zero() {
            std::thread::sleep(self.write_latency);
        }
        self.inner.try_write_block(id, buf)
    }

    fn try_sync(&mut self) -> Result<(), StorageError> {
        self.inner.try_sync()
    }

    fn grow(&mut self, blocks: usize) {
        self.inner.grow(blocks);
    }

    fn try_read_block_shared(
        &self,
        id: usize,
        buf: &mut [f64],
    ) -> Option<Result<(), StorageError>> {
        let result = self.inner.try_read_block_shared(id, buf)?;
        if !self.read_latency.is_zero() {
            std::thread::sleep(self.read_latency);
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBlockStore;
    use crate::stats::IoStats;
    use std::time::Instant;

    #[test]
    fn transfers_pass_through_unchanged() {
        let inner = MemBlockStore::new(4, 4, IoStats::new());
        let mut s = ThrottledBlockStore::symmetric(inner, Duration::ZERO);
        s.try_write_block(1, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut buf = [0.0; 4];
        s.try_read_block(1, &mut buf).unwrap();
        assert_eq!(buf, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn reads_take_at_least_the_configured_latency() {
        let inner = MemBlockStore::new(4, 2, IoStats::new());
        let mut s = ThrottledBlockStore::new(inner, Duration::from_millis(5), Duration::ZERO);
        let mut buf = [0.0; 4];
        let t0 = Instant::now();
        s.try_read_block(0, &mut buf).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
