//! Property tests for the sparse v3 pipeline (`docs/FORMAT.md` §8,
//! `docs/ERROR_MODEL.md`).
//!
//! The chain under test is the full write path of `ingest --format v3`:
//! dense tile → retention (threshold ε) → sparse encode → v3 blocks
//! file → reopen → read → reconstruct. Two contracts are stated as
//! sampled properties, not hand-picked examples:
//!
//! 1. **Exactness at ε = 0**: the store is lossless for the images it
//!    is given, so with `Threshold(0)` every coefficient reads back
//!    `f64::to_bits`-identically.
//! 2. **Bounded error otherwise**: reading back equals the *retained*
//!    image bit-for-bit, and the L2 distance to the original equals the
//!    retention report's achieved error, which is itself bounded by
//!    `ε · sqrt(dropped)`.

use proptest::prelude::*;
use ss_core::sparse::{RetentionPolicy, SparseTile};
use ss_storage::sparse::{decode, encode};
use ss_storage::{BlockStore, FileBlockStore, IoStats, StorageError};
use std::path::PathBuf;

fn tmp(name: &str, case: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ss_sparse_prop_{name}_{case}_{}",
        std::process::id()
    ))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(ss_storage::file::sidecar_path(path));
}

/// A mostly-zero dense tile: each slot is non-zero with probability
/// `density`, values in `[-1, 1]`, all derived from `seed` so failures
/// reproduce from the proptest case alone.
fn random_tile(seed: u64, capacity: usize, density: f64) -> Vec<f64> {
    let mut rng = ss_datagen::SplitMix64::new(seed);
    (0..capacity)
        .map(|_| {
            if rng.next_f64() < density {
                rng.range(-1.0, 1.0)
            } else {
                0.0
            }
        })
        .collect()
}

fn l2(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn codec_roundtrip_is_bit_exact(seed in any::<u64>(), cap_log in 2u32..9) {
        let capacity = 1usize << cap_log;
        let dense = random_tile(seed, capacity, 0.2);
        let tile = SparseTile::from_dense(&dense);
        let payload = encode(&tile);
        let mut back = vec![f64::NAN; capacity];
        if payload.is_empty() {
            prop_assert!(tile.is_zero());
            back.fill(0.0);
        } else {
            decode(&payload, capacity).unwrap().to_dense(&mut back);
        }
        for (slot, (a, b)) in dense.iter().zip(&back).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "slot {}", slot);
        }
    }

    #[test]
    fn v3_store_roundtrip_exact_at_zero_threshold(seed in any::<u64>()) {
        let (capacity, blocks) = (64usize, 8usize);
        let path = tmp("exact", seed);
        let images: Vec<Vec<f64>> = (0..blocks)
            .map(|b| random_tile(seed.wrapping_add(b as u64), capacity, 0.15))
            .collect();
        {
            let mut store =
                FileBlockStore::create_v3(&path, capacity, blocks, IoStats::new()).unwrap();
            for (id, image) in images.iter().enumerate() {
                let mut retained = image.clone();
                let report = RetentionPolicy::Threshold(0.0).apply(&mut retained);
                prop_assert_eq!(report.dropped, 0);
                store.try_write_block(id, &retained).unwrap();
            }
            store.sync().unwrap();
        }
        let mut store = FileBlockStore::open_v3(&path, capacity, blocks, IoStats::new()).unwrap();
        let mut buf = vec![0.0; capacity];
        for (id, image) in images.iter().enumerate() {
            store.try_read_block(id, &mut buf).unwrap();
            for (slot, (a, b)) in image.iter().zip(&buf).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "block {} slot {}", id, slot);
            }
        }
        prop_assert!(store.scrub().unwrap().is_clean());
        cleanup(&path);
    }

    #[test]
    fn v3_store_roundtrip_bounded_error_when_lossy(
        seed in any::<u64>(),
        eps in 0.01f64..0.5,
    ) {
        let (capacity, blocks) = (64usize, 4usize);
        let path = tmp("lossy", seed);
        let mut achieved_sq = 0.0f64;
        let mut dropped_total = 0u64;
        let images: Vec<Vec<f64>> = (0..blocks)
            .map(|b| random_tile(seed.wrapping_add(b as u64), capacity, 0.3))
            .collect();
        let mut retained_images = Vec::new();
        {
            let mut store =
                FileBlockStore::create_v3(&path, capacity, blocks, IoStats::new()).unwrap();
            for (id, image) in images.iter().enumerate() {
                let mut retained = image.clone();
                let report = RetentionPolicy::Threshold(eps).apply(&mut retained);
                prop_assert!(report.max_dropped <= eps, "dropped above threshold");
                achieved_sq += report.dropped_sq;
                dropped_total += report.dropped;
                store.try_write_block(id, &retained).unwrap();
                retained_images.push(retained);
            }
            store.sync().unwrap();
        }
        let mut store = FileBlockStore::open_v3(&path, capacity, blocks, IoStats::new()).unwrap();
        let mut buf = vec![0.0; capacity];
        for (id, retained) in retained_images.iter().enumerate() {
            store.try_read_block(id, &mut buf).unwrap();
            // The store itself is lossless: exact equality with the
            // retained image, whatever the threshold was.
            for (slot, (a, b)) in retained.iter().zip(&buf).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "block {} slot {}", id, slot);
            }
            // The only error vs. the original is what retention reported.
            let err = l2(&images[id], &buf);
            prop_assert!(err <= eps * (capacity as f64).sqrt() + 1e-12);
        }
        // Achieved error is reported exactly: Σ over blocks matches the
        // L2 of the whole-store difference, bounded by ε·sqrt(dropped).
        let whole: f64 = images
            .iter()
            .zip(&retained_images)
            .map(|(a, b)| l2(a, b).powi(2))
            .sum::<f64>()
            .sqrt();
        prop_assert!((whole - achieved_sq.sqrt()).abs() <= 1e-9);
        prop_assert!(achieved_sq.sqrt() <= eps * (dropped_total as f64).sqrt() + 1e-12);
        cleanup(&path);
    }

    #[test]
    fn v3_scrub_flags_any_flipped_payload_bit(seed in any::<u64>(), flip in 0usize..64) {
        // Write two sparse blocks, flip one bit somewhere in the heap,
        // and require the scrub to localise the damage to exactly the
        // block owning that byte — the §8.4 detection guarantee.
        let (capacity, blocks) = (32usize, 2usize);
        let path = tmp("scrub", seed.wrapping_add(flip as u64));
        {
            let mut store =
                FileBlockStore::create_v3(&path, capacity, blocks, IoStats::new()).unwrap();
            for id in 0..blocks {
                let image = random_tile(seed.wrapping_add(id as u64).wrapping_add(1), capacity, 0.9);
                store.try_write_block(id, &image).unwrap();
            }
            store.sync().unwrap();
        }
        let heap_start = (ss_storage::sparse::V3_HEADER_LEN
            + blocks as u64 * ss_storage::sparse::V3_DIR_ENTRY_LEN) as usize;
        let mut bytes = std::fs::read(&path).unwrap();
        prop_assert!(bytes.len() > heap_start);
        let target = heap_start + flip % (bytes.len() - heap_start);
        bytes[target] ^= 1 << (flip % 8);
        std::fs::write(&path, &bytes).unwrap();
        let mut store = FileBlockStore::open_v3(&path, capacity, blocks, IoStats::new()).unwrap();
        let report = store.scrub().unwrap();
        // density 0.9 makes both payloads non-empty, so a heap flip is
        // either inside a live payload (must be caught) or in alloc
        // slack past `len` (harmless by design).
        for &id in &report.corrupt {
            let mut buf = vec![0.0; capacity];
            prop_assert!(matches!(
                store.try_read_block(id, &mut buf),
                Err(StorageError::Checksum { .. })
            ));
        }
        cleanup(&path);
    }
}
