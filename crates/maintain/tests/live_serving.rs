//! Concurrency and crash-recovery properties of the snapshot store.
//!
//! Two contracts from the live-serving design (DESIGN.md §12) are stated
//! here as tests rather than prose:
//!
//! 1. **No partial epochs**: a pinned reader sees *exactly* the state of
//!    one committed epoch across every tile, bit for bit, no matter how
//!    many commits and checkpoint folds race with it — and the final
//!    state is bit-identical to applying the same deltas serially.
//! 2. **Crash replay is exact**: killing the process anywhere between
//!    the WAL append (the commit point) and the base-store writeback —
//!    including mid-writeback — loses nothing; replaying the log onto
//!    the reopened store restores the committed state bit for bit.

use ss_core::{Tiling1d, TilingMap};
use ss_maintain::{replay_records, DeltaBuffer, FlushMode, SnapshotCoeffStore, Wal};
use ss_storage::{FileBlockStore, IoStats, SharedCoeffStore};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The deterministic delta the writer commits to sentinel `tile` in
/// epoch `epoch` — shared by the live writer and the serial reference.
fn delta(epoch: u64, tile: usize) -> f64 {
    ((epoch as usize * 31 + tile * 17) % 13) as f64 / 3.0 - 2.0
}

#[test]
fn hammered_readers_see_whole_epochs_and_serial_final_state() {
    const EPOCHS: u64 = 60;
    const READERS: usize = 4;
    let sentinels: Vec<usize> = vec![0, 5, 10, 15];

    // Serial reference: prefix[e][k] is sentinel k's value after epoch e,
    // folded in the exact order `commit` applies ops (one add per epoch).
    let mut prefix: Vec<Vec<f64>> = vec![vec![0.0; sentinels.len()]];
    for e in 1..=EPOCHS {
        let mut row = prefix.last().unwrap().clone();
        for (k, &t) in sentinels.iter().enumerate() {
            row[k] += delta(e, t);
        }
        prefix.push(row);
    }
    let prefix = Arc::new(prefix);

    // 64 coefficients in 16 tiles of 4.
    let base = ss_storage::mem_shared_store(Tiling1d::new(6, 2), 8, 4, IoStats::new());
    let store = Arc::new(SnapshotCoeffStore::new(base, None, 0));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for r in 0..READERS {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            let prefix = Arc::clone(&prefix);
            let sentinels = sentinels.clone();
            scope.spawn(move || {
                let mut pins = 0u64;
                while !done.load(Ordering::Acquire) || pins == 0 {
                    let pin = store.pin();
                    let e = pin.epoch() as usize;
                    // Every sentinel must hold exactly epoch e's value: a
                    // mismatched tile would mean a partially applied (or
                    // partially folded) epoch leaked into a snapshot.
                    for (k, &t) in sentinels.iter().enumerate() {
                        let got = pin.get(t, 0);
                        assert_eq!(
                            got.to_bits(),
                            prefix[e][k].to_bits(),
                            "reader {r}: epoch {e} sentinel tile {t}: {got} vs {}",
                            prefix[e][k]
                        );
                    }
                    drop(pin);
                    pins += 1;
                }
            });
        }

        // The writer: one commit per epoch, with interleaved checkpoint
        // folds (which may be blocked by pinned readers — that's fine).
        let mut buf = DeltaBuffer::new(store.map().block_capacity(), FlushMode::Exact);
        for e in 1..=EPOCHS {
            buf.begin_box();
            for &t in &sentinels {
                buf.add(t, 0, delta(e, t));
            }
            let (epoch, _) = store.commit(&mut buf).unwrap();
            assert_eq!(epoch, e);
            // Read-your-writes: a pin taken after the commit returns must
            // see this epoch's values.
            let pin = store.pin();
            assert_eq!(pin.epoch(), e);
            for (k, &t) in sentinels.iter().enumerate() {
                assert_eq!(pin.get(t, 0).to_bits(), prefix[e as usize][k].to_bits());
            }
            drop(pin);
            if e % 7 == 0 {
                store.checkpoint().unwrap(); // may return false under pins
            }
        }
        done.store(true, Ordering::Release);
    });

    // Final state is bit-identical to the serial fold, and survives a
    // full checkpoint into the base store.
    let store = Arc::into_inner(store).expect("readers dropped their handles");
    let pin = store.pin();
    for (k, &t) in sentinels.iter().enumerate() {
        assert_eq!(
            pin.get(t, 0).to_bits(),
            prefix[EPOCHS as usize][k].to_bits()
        );
    }
    drop(pin);
    while !store.checkpoint().unwrap() {
        std::thread::yield_now();
    }
    for (k, &t) in sentinels.iter().enumerate() {
        assert_eq!(
            store.base().pool().read(t, 0).to_bits(),
            prefix[EPOCHS as usize][k].to_bits()
        );
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ss_live_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn reopen(
    dir: &Path,
) -> (
    SharedCoeffStore<Tiling1d, FileBlockStore>,
    Wal,
    Vec<ss_maintain::WalRecord>,
) {
    let map = Tiling1d::new(4, 2);
    let fbs =
        FileBlockStore::open(&dir.join("coeffs.bin"), 4, map.num_tiles(), IoStats::new()).unwrap();
    let cs = SharedCoeffStore::new(map, fbs, 8, 2, IoStats::new());
    let (wal, recs, scan) = Wal::open(&dir.join("log.wal")).unwrap();
    assert!(!scan.torn_tail);
    (cs, wal, recs)
}

#[test]
fn crash_between_wal_append_and_writeback_replays_bit_identically() {
    let dir = tmp_dir("crash");
    let map = Tiling1d::new(4, 2); // 16 detail coefficients in tiles of 4
    let blocks = map.num_tiles();

    // Phase 1: commit three epochs, then "crash" (drop with no
    // checkpoint: the base file still holds zeros, only the WAL has the
    // commits).
    let expected3: Vec<f64> = {
        let fbs =
            FileBlockStore::create(&dir.join("coeffs.bin"), 4, blocks, IoStats::new()).unwrap();
        let cs = SharedCoeffStore::new(map, fbs, 8, 2, IoStats::new());
        let (wal, recs, _) = Wal::open(&dir.join("log.wal")).unwrap();
        assert!(recs.is_empty());
        let s = SnapshotCoeffStore::new(cs, Some(wal), 0);
        let mut buf = DeltaBuffer::new(4, FlushMode::Exact);
        for e in 1..=3u64 {
            buf.begin_box();
            for t in 0..4usize {
                buf.add(t, (e as usize + t) % 4, delta(e, t));
            }
            s.commit(&mut buf).unwrap();
        }
        let pin = s.pin();
        (0..4)
            .flat_map(|t| (0..4).map(move |slot| (t, slot)))
            .map(|(t, slot)| pin.get(t, slot))
            .collect()
        // `s` dropped here without checkpoint = crash after WAL fsync.
    };

    // Recovery 1: replay the log onto the reopened (all-zero) store.
    let (cs, wal, recs) = reopen(&dir);
    assert_eq!(recs.len(), 3);
    assert_eq!(recs.last().unwrap().epoch, 3);
    assert!(replay_records(&recs, &cs) > 0);
    for (i, (t, slot)) in (0..4)
        .flat_map(|t| (0..4).map(move |slot| (t, slot)))
        .enumerate()
    {
        assert_eq!(
            cs.pool().read(t, slot).to_bits(),
            expected3[i].to_bits(),
            "tile {t} slot {slot} after replay"
        );
    }

    // Phase 2: commit a fourth epoch, then crash *mid-writeback*: one
    // dirty tile makes it into the base file before the process dies
    // (the WAL reset that would follow a complete fold never happens).
    let expected4: Vec<f64> = {
        let s = SnapshotCoeffStore::new(cs, Some(wal), 3);
        let mut buf = DeltaBuffer::new(4, FlushMode::Exact);
        buf.begin_box();
        for t in 0..4usize {
            buf.add(t, t, delta(4, t));
        }
        s.commit(&mut buf).unwrap();
        let pin = s.pin();
        let all: Vec<f64> = (0..4)
            .flat_map(|t| (0..4).map(move |slot| (t, slot)))
            .map(|(t, slot)| pin.get(t, slot))
            .collect();
        // Partial fold: exactly one epoch-4 tile image reaches the base.
        let image: Vec<f64> = (0..4).map(|slot| pin.get(1, slot)).collect();
        drop(pin);
        s.base().overwrite_tile(1, &image);
        s.base().flush();
        all
        // Crash: dropped before the fold completes or the WAL resets.
    };

    // Recovery 2: replay is idempotent over the half-folded base — the
    // already-written tile is overwritten with the same bits.
    let (cs, _wal, recs) = reopen(&dir);
    assert_eq!(recs.len(), 4);
    replay_records(&recs, &cs);
    for (i, (t, slot)) in (0..4)
        .flat_map(|t| (0..4).map(move |slot| (t, slot)))
        .enumerate()
    {
        assert_eq!(
            cs.pool().read(t, slot).to_bits(),
            expected4[i].to_bits(),
            "tile {t} slot {slot} after mid-writeback replay"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_replay_onto_sparse_v3_store_is_bit_identical() {
    // The MVCC commit pipeline and WAL replay speak dense tile images;
    // a sparse v3 base store (docs/FORMAT.md §8) must be invisible to
    // them: crash-replaying the log onto a reopened v3 store restores
    // the committed state bit for bit, exactly as with a dense base.
    let dir = tmp_dir("crash_v3");
    let map = Tiling1d::new(4, 2); // 16 coefficients in 4 tiles of 4
    let blocks = map.num_tiles();
    let path = dir.join("coeffs.v3");

    // Commit three epochs, then "crash" before any checkpoint: only the
    // WAL holds the state; the v3 base file is still all-zero entries.
    let expected: Vec<f64> = {
        let fbs = FileBlockStore::create_v3(&path, 4, blocks, IoStats::new()).unwrap();
        assert!(fbs.sparse());
        let cs = SharedCoeffStore::new(map.clone(), fbs, 8, 2, IoStats::new());
        let (wal, recs, _) = Wal::open(&dir.join("log.wal")).unwrap();
        assert!(recs.is_empty());
        let s = SnapshotCoeffStore::new(cs, Some(wal), 0);
        let mut buf = DeltaBuffer::new(4, FlushMode::Exact);
        for e in 1..=3u64 {
            buf.begin_box();
            for t in 0..4usize {
                buf.add(t, (e as usize + t) % 4, delta(e, t));
            }
            s.commit(&mut buf).unwrap();
        }
        let pin = s.pin();
        (0..4)
            .flat_map(|t| (0..4).map(move |slot| (t, slot)))
            .map(|(t, slot)| pin.get(t, slot))
            .collect()
    };

    // Recovery: replay writes dense post-images *through* the sparse
    // encoder like any other tile write.
    let fbs = FileBlockStore::open_v3(&path, 4, blocks, IoStats::new()).unwrap();
    let cs = SharedCoeffStore::new(map, fbs, 8, 2, IoStats::new());
    let (_wal, recs, scan) = Wal::open(&dir.join("log.wal")).unwrap();
    assert!(!scan.torn_tail);
    assert_eq!(recs.len(), 3);
    assert!(replay_records(&recs, &cs) > 0);
    cs.flush();
    for (i, (t, slot)) in (0..4)
        .flat_map(|t| (0..4).map(move |slot| (t, slot)))
        .enumerate()
    {
        assert_eq!(
            cs.pool().read(t, slot).to_bits(),
            expected[i].to_bits(),
            "tile {t} slot {slot} after replay onto v3"
        );
    }
    // The replayed store is durable and scrubs clean as a v3 file.
    let (_, mut fbs) = cs.into_parts();
    fbs.sync().unwrap();
    assert!(fbs.scrub().unwrap().is_clean());
    let _ = std::fs::remove_dir_all(&dir);
}
