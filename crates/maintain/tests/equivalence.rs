//! Property tests: group-committed maintenance answers bit-identically.
//!
//! The contract the `DeltaBuffer` engine sells is that coalescing is an
//! I/O-layer optimisation with **zero** numerical surface: for any batch
//! of update boxes, flushing one group commit (serially or across worker
//! threads, against a healthy device or one that drops requests until
//! retried) produces coefficient blocks whose every `f64` is
//! bit-for-bit the value the serial per-box path writes. These tests
//! state that as sampled properties over random workloads rather than as
//! hand-picked examples — `f64::to_bits` equality, no tolerances.

use proptest::prelude::*;
use ss_array::{NdArray, Shape};
use ss_core::{NonStandardTiling, StandardTiling, TilingMap};
use ss_datagen::SplitMix64;
use ss_maintain::{
    update_boxes_nonstandard, update_boxes_nonstandard_parallel, update_boxes_standard,
    update_boxes_standard_parallel, FlushMode,
};
use ss_storage::wstore::mem_store;
use ss_storage::{
    mem_shared_store, BlockStore, CoeffStore, FaultConfig, FaultInjectingBlockStore, IoStats,
    MemBlockStore, RetryPolicy, RetryingBlockStore,
};

/// `count` boxes with random origins, extents (≤ 5 per axis) and values,
/// all derived from one sampled seed so failures reproduce from the
/// proptest case alone.
fn random_boxes(seed: u64, dims: &[usize], count: usize) -> Vec<(Vec<usize>, NdArray<f64>)> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            let origin: Vec<usize> = dims.iter().map(|&d| rng.below(d - 1)).collect();
            let extents: Vec<usize> = dims
                .iter()
                .zip(&origin)
                .map(|(&d, &o)| 1 + rng.below((d - o).min(5)))
                .collect();
            let delta = NdArray::from_fn(Shape::new(&extents), |_| rng.range(-1.0, 1.0));
            (origin, delta)
        })
        .collect()
}

/// Every (tile, slot) of both stores holds the same bit pattern.
fn assert_identical<M, A, B>(a: &mut CoeffStore<M, A>, b: &mut CoeffStore<M, B>, label: &str)
where
    M: TilingMap,
    A: BlockStore,
    B: BlockStore,
{
    let tiles = a.map().num_tiles();
    let cap = a.map().block_capacity();
    for tile in 0..tiles {
        for slot in 0..cap {
            let (x, y) = (a.read_at(tile, slot), b.read_at(tile, slot));
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: tile {tile} slot {slot}: {x} vs {y}"
            );
        }
    }
}

type FaultyStore = RetryingBlockStore<FaultInjectingBlockStore<MemBlockStore>>;

/// A store whose device drops `rate` of reads *and* writes (transient,
/// deterministic per `seed`) beneath a bounded-retry layer — the flush
/// path must come out unscathed.
fn faulty_store<M: TilingMap>(map: M, rate: f64, seed: u64) -> CoeffStore<M, FaultyStore> {
    let stats = IoStats::default();
    let inner = MemBlockStore::new(map.block_capacity(), map.num_tiles(), stats.clone());
    let cfg = FaultConfig {
        seed,
        read_error_rate: rate,
        write_error_rate: rate,
        ..FaultConfig::default()
    };
    let store = RetryingBlockStore::new(
        FaultInjectingBlockStore::new(inner, cfg),
        RetryPolicy::with_retries(16),
    );
    CoeffStore::new(map, store, 4, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_standard_is_bit_identical(seed in any::<u64>(), count in 1usize..12) {
        let n = [4u32, 4];
        let map = StandardTiling::new(&n, &[2, 2]);
        let boxes = random_boxes(seed, &[16, 16], count);

        let mut serial = mem_store(map.clone(), 4, IoStats::default());
        for (origin, delta) in &boxes {
            ss_transform::update_box_standard(&mut serial, &n, origin, delta);
        }
        let mut batched = mem_store(map, 4, IoStats::default());
        let report = update_boxes_standard(&mut batched, &n, &boxes, FlushMode::Exact);
        prop_assert_eq!(report.flush.boxes, count as u64);
        assert_identical(&mut serial, &mut batched, "standard batch");
    }

    #[test]
    fn batched_nonstandard_is_bit_identical(seed in any::<u64>(), count in 1usize..12) {
        let n = 4u32;
        let map = NonStandardTiling::new(2, n, 2);
        let boxes = random_boxes(seed, &[16, 16], count);

        let mut serial = mem_store(map.clone(), 4, IoStats::default());
        for (origin, delta) in &boxes {
            ss_transform::update_box_nonstandard(&mut serial, n, origin, delta);
        }
        let mut batched = mem_store(map, 4, IoStats::default());
        update_boxes_nonstandard(&mut batched, n, &boxes, FlushMode::Exact);
        assert_identical(&mut serial, &mut batched, "nonstandard batch");
    }

    #[test]
    fn parallel_standard_flush_is_bit_identical(
        seed in any::<u64>(),
        count in 1usize..12,
        workers in 1usize..6,
    ) {
        let n = [4u32, 4];
        let map = StandardTiling::new(&n, &[2, 2]);
        let boxes = random_boxes(seed, &[16, 16], count);

        let mut serial = mem_store(map.clone(), 4, IoStats::default());
        for (origin, delta) in &boxes {
            ss_transform::update_box_standard(&mut serial, &n, origin, delta);
        }
        let shared = mem_shared_store(map, 8, 4, IoStats::default());
        update_boxes_standard_parallel(&shared, &n, &boxes, FlushMode::Exact, workers);
        let (m, store) = shared.into_parts();
        let mut check = CoeffStore::new(m, store, 4, IoStats::default());
        assert_identical(&mut serial, &mut check, "standard parallel");
    }

    #[test]
    fn parallel_nonstandard_flush_is_bit_identical(
        seed in any::<u64>(),
        count in 1usize..12,
        workers in 1usize..6,
    ) {
        let n = 4u32;
        let map = NonStandardTiling::new(2, n, 2);
        let boxes = random_boxes(seed, &[16, 16], count);

        let mut serial = mem_store(map.clone(), 4, IoStats::default());
        for (origin, delta) in &boxes {
            ss_transform::update_box_nonstandard(&mut serial, n, origin, delta);
        }
        let shared = mem_shared_store(map, 8, 4, IoStats::default());
        update_boxes_nonstandard_parallel(&shared, n, &boxes, FlushMode::Exact, workers);
        let (m, store) = shared.into_parts();
        let mut check = CoeffStore::new(m, store, 4, IoStats::default());
        assert_identical(&mut serial, &mut check, "nonstandard parallel");
    }

    #[test]
    fn faulty_device_batched_flush_is_bit_identical(
        seed in any::<u64>(),
        count in 1usize..10,
        fault_seed in any::<u64>(),
    ) {
        // Transient read AND write faults under the pool: bounded retries
        // absorb them and the flushed bits match a fault-free serial run.
        let n = [4u32, 4];
        let map = StandardTiling::new(&n, &[2, 2]);
        let boxes = random_boxes(seed, &[16, 16], count);

        let mut serial = mem_store(map.clone(), 4, IoStats::default());
        for (origin, delta) in &boxes {
            ss_transform::update_box_standard(&mut serial, &n, origin, delta);
        }
        let mut faulty = faulty_store(map, 0.05, fault_seed);
        update_boxes_standard(&mut faulty, &n, &boxes, FlushMode::Exact);
        assert_identical(&mut serial, &mut faulty, "faulty batch");
    }
}
