//! Batch drivers over a [`DeltaBuffer`]: group-committed box updates (both
//! forms, serial and parallel flush) and a coalesced ingest driver.

use crate::buffer::{DeltaBuffer, FlushMode, FlushReport};
use ss_array::{MultiIndexIter, NdArray};
use ss_core::TilingMap;
use ss_storage::{BlockStore, CoeffStore, SharedCoeffStore};
use ss_transform::{ChunkSource, UpdateReport};

/// Outcome of a group-committed batch of box updates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Enumeration totals (dyadic pieces, coefficients touched).
    pub update: UpdateReport,
    /// Flush totals (tiles written, coalescing).
    pub flush: FlushReport,
}

/// Buffers one standard-form box update's delta stream without flushing.
fn buffer_box_standard(
    buf: &mut DeltaBuffer,
    map: &impl TilingMap,
    n: &[u32],
    origin: &[usize],
    delta: &NdArray<f64>,
) -> UpdateReport {
    buf.begin_box();
    ss_transform::for_each_box_delta_standard(n, origin, delta, |idx, v| buf.add_at(map, idx, v))
}

/// Buffers one non-standard-form box update's delta stream.
fn buffer_box_nonstandard(
    buf: &mut DeltaBuffer,
    map: &impl TilingMap,
    n: u32,
    origin: &[usize],
    delta: &NdArray<f64>,
) -> UpdateReport {
    buf.begin_box();
    ss_transform::for_each_box_delta_nonstandard(n, origin, delta, |idx, v| buf.add_at(map, idx, v))
}

/// Applies a batch of standard-form box updates with one group-commit
/// flush: every dirty tile is read and written exactly once, however many
/// boxes touched it. In [`FlushMode::Exact`] the stored coefficients are
/// bit-identical to applying [`ss_transform::update_box_standard`] box by
/// box in the same order.
pub fn update_boxes_standard<M: TilingMap, S: BlockStore>(
    cs: &mut CoeffStore<M, S>,
    n: &[u32],
    boxes: &[(Vec<usize>, NdArray<f64>)],
    mode: FlushMode,
) -> BatchReport {
    let mut buf = DeltaBuffer::for_map(cs.map(), mode);
    let mut update = UpdateReport::default();
    for (origin, delta) in boxes {
        update.merge(buffer_box_standard(&mut buf, cs.map(), n, origin, delta));
    }
    let flush = buf.flush_into(cs);
    BatchReport { update, flush }
}

/// [`update_boxes_standard`] with the flush sharded across `workers`
/// threads of a [`SharedCoeffStore`]. Buffering stays serial (it defines
/// the replay order); each dirty tile is owned by exactly one worker, so
/// the result is bit-identical to the serial flush for any worker count.
pub fn update_boxes_standard_parallel<M: TilingMap, S: BlockStore + Send + Sync>(
    cs: &SharedCoeffStore<M, S>,
    n: &[u32],
    boxes: &[(Vec<usize>, NdArray<f64>)],
    mode: FlushMode,
    workers: usize,
) -> BatchReport {
    let mut buf = DeltaBuffer::for_map(cs.map(), mode);
    let mut update = UpdateReport::default();
    for (origin, delta) in boxes {
        update.merge(buffer_box_standard(&mut buf, cs.map(), n, origin, delta));
    }
    let flush = buf.flush_into_shared(cs, workers);
    BatchReport { update, flush }
}

/// Non-standard-form twin of [`update_boxes_standard`]: the domain is a
/// `(2^n)^d` hypercube and every dyadic piece is subdivided into aligned
/// cubes before SHIFT-SPLIT.
pub fn update_boxes_nonstandard<M: TilingMap, S: BlockStore>(
    cs: &mut CoeffStore<M, S>,
    n: u32,
    boxes: &[(Vec<usize>, NdArray<f64>)],
    mode: FlushMode,
) -> BatchReport {
    let mut buf = DeltaBuffer::for_map(cs.map(), mode);
    let mut update = UpdateReport::default();
    for (origin, delta) in boxes {
        update.merge(buffer_box_nonstandard(&mut buf, cs.map(), n, origin, delta));
    }
    let flush = buf.flush_into(cs);
    BatchReport { update, flush }
}

/// Non-standard-form twin of [`update_boxes_standard_parallel`].
pub fn update_boxes_nonstandard_parallel<M: TilingMap, S: BlockStore + Send + Sync>(
    cs: &SharedCoeffStore<M, S>,
    n: u32,
    boxes: &[(Vec<usize>, NdArray<f64>)],
    mode: FlushMode,
    workers: usize,
) -> BatchReport {
    let mut buf = DeltaBuffer::for_map(cs.map(), mode);
    let mut update = UpdateReport::default();
    for (origin, delta) in boxes {
        update.merge(buffer_box_nonstandard(&mut buf, cs.map(), n, origin, delta));
    }
    let flush = buf.flush_into_shared(cs, workers);
    BatchReport { update, flush }
}

/// Outcome of a coalesced ingest run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Chunks processed.
    pub chunks: usize,
    /// Input cells scanned.
    pub input_coeffs: u64,
    /// Group-commit flushes performed.
    pub flushes: usize,
    /// Merged flush totals across the run.
    pub flush: FlushReport,
}

/// Standard-form out-of-core transform with group-committed writeback:
/// like [`ss_transform::transform_standard`], but the SHIFT-SPLIT delta
/// streams of `group` consecutive chunks are buffered tile-major and
/// flushed together, so split-path tiles shared by a group are written
/// once per *group* rather than once per chunk. `group == 0` buffers the
/// whole ingest and flushes once at the end.
///
/// With [`FlushMode::Exact`] the stored transform is bit-identical to the
/// per-chunk driver: each chunk contributes at most one delta per
/// coefficient, so arrival-ordered replay preserves the per-coefficient
/// addition sequence.
pub fn transform_standard_coalesced<M: TilingMap, S: BlockStore>(
    src: &impl ChunkSource,
    cs: &mut CoeffStore<M, S>,
    group: usize,
    mode: FlushMode,
) -> IngestReport {
    let n = src.domain_levels().to_vec();
    let stats = cs.stats().clone();
    let block_capacity = cs.map().block_capacity();
    let mut buf = DeltaBuffer::for_map(cs.map(), mode);
    let mut report = IngestReport::default();
    for block in MultiIndexIter::new(&src.grid()) {
        let mut chunk = src.read_chunk(&block);
        // Input scan accounting, mirroring the per-chunk drivers: every
        // cell is a coefficient read arriving in block-sized units.
        stats.add_coeff_reads(chunk.len() as u64);
        stats.add_block_reads(chunk.len().div_ceil(block_capacity) as u64);
        ss_core::standard::forward(&mut chunk);
        buf.begin_box();
        {
            let map = cs.map();
            ss_core::split::standard_deltas(&chunk, &n, &block, |idx, delta| {
                buf.add_at(map, idx, delta);
            });
        }
        report.chunks += 1;
        report.input_coeffs += chunk.len() as u64;
        if group > 0 && report.chunks % group == 0 {
            report.flush.merge(buf.flush_into(cs));
            report.flushes += 1;
        }
    }
    if !buf.is_empty() {
        report.flush.merge(buf.flush_into(cs));
        report.flushes += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::Shape;
    use ss_core::{NonStandardTiling, StandardTiling};
    use ss_datagen::SplitMix64;
    use ss_storage::{mem_shared_store, wstore::mem_store, IoStats};
    use ss_transform::ArraySource;

    fn random_boxes(
        rng: &mut SplitMix64,
        dims: &[usize],
        count: usize,
    ) -> Vec<(Vec<usize>, NdArray<f64>)> {
        (0..count)
            .map(|_| {
                let origin: Vec<usize> = dims.iter().map(|&d| rng.below(d - 1)).collect();
                let extents: Vec<usize> = dims
                    .iter()
                    .zip(&origin)
                    .map(|(&d, &o)| 1 + rng.below((d - o).min(5)))
                    .collect();
                let delta = NdArray::from_fn(Shape::new(&extents), |_| rng.range(-1.0, 1.0));
                (origin, delta)
            })
            .collect()
    }

    fn assert_stores_identical<M: TilingMap>(
        a: &mut CoeffStore<M, ss_storage::MemBlockStore>,
        b: &mut CoeffStore<M, ss_storage::MemBlockStore>,
        label: &str,
    ) {
        let tiles = a.map().num_tiles();
        let cap = a.map().block_capacity();
        for tile in 0..tiles {
            for slot in 0..cap {
                assert_eq!(
                    a.read_at(tile, slot).to_bits(),
                    b.read_at(tile, slot).to_bits(),
                    "{label}: tile {tile} slot {slot}"
                );
            }
        }
    }

    #[test]
    fn batched_standard_matches_serial_bit_for_bit() {
        let n = [4u32, 4];
        let map = StandardTiling::new(&n, &[2, 2]);
        let mut rng = SplitMix64::new(7);
        let boxes = random_boxes(&mut rng, &[16, 16], 12);

        let mut serial = mem_store(map.clone(), 4, IoStats::default());
        for (origin, delta) in &boxes {
            ss_transform::update_box_standard(&mut serial, &n, origin, delta);
        }
        let mut batched = mem_store(map.clone(), 4, IoStats::default());
        let report = update_boxes_standard(&mut batched, &n, &boxes, FlushMode::Exact);
        assert_eq!(report.flush.boxes, 12);
        assert!(report.flush.coalescing_ratio() > 1.0);
        assert_stores_identical(&mut serial, &mut batched, "standard exact");
    }

    #[test]
    fn batched_standard_merged_matches_within_tolerance() {
        let n = [4u32, 3];
        let map = StandardTiling::new(&n, &[2, 1]);
        let mut rng = SplitMix64::new(11);
        let boxes = random_boxes(&mut rng, &[16, 8], 10);

        let mut serial = mem_store(map.clone(), 4, IoStats::default());
        for (origin, delta) in &boxes {
            ss_transform::update_box_standard(&mut serial, &n, origin, delta);
        }
        let mut batched = mem_store(map.clone(), 4, IoStats::default());
        update_boxes_standard(&mut batched, &n, &boxes, FlushMode::Merged);
        for tile in 0..map.num_tiles() {
            for slot in 0..map.block_capacity() {
                let a = serial.read_at(tile, slot);
                let b = batched.read_at(tile, slot);
                assert!((a - b).abs() < 1e-9, "tile {tile} slot {slot}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn batched_nonstandard_matches_serial_bit_for_bit() {
        let n = 4u32;
        let map = NonStandardTiling::new(2, n, 2);
        let mut rng = SplitMix64::new(23);
        let boxes = random_boxes(&mut rng, &[16, 16], 8);

        let mut serial = mem_store(map.clone(), 4, IoStats::default());
        for (origin, delta) in &boxes {
            ss_transform::update_box_nonstandard(&mut serial, n, origin, delta);
        }
        let mut batched = mem_store(map.clone(), 4, IoStats::default());
        let report = update_boxes_nonstandard(&mut batched, n, &boxes, FlushMode::Exact);
        assert_eq!(report.flush.boxes, 8);
        assert_stores_identical(&mut serial, &mut batched, "nonstandard exact");
    }

    #[test]
    fn parallel_batch_matches_serial_batch() {
        let n = [5u32, 4];
        let map = StandardTiling::new(&n, &[2, 2]);
        let mut rng = SplitMix64::new(41);
        let boxes = random_boxes(&mut rng, &[32, 16], 16);

        let mut serial = mem_store(map.clone(), 4, IoStats::default());
        update_boxes_standard(&mut serial, &n, &boxes, FlushMode::Exact);
        for workers in [1usize, 2, 5] {
            let shared = mem_shared_store(map.clone(), 8, 4, IoStats::default());
            update_boxes_standard_parallel(&shared, &n, &boxes, FlushMode::Exact, workers);
            let (m, store) = shared.into_parts();
            let mut check = CoeffStore::new(m, store, 4, IoStats::default());
            assert_stores_identical(&mut serial, &mut check, "parallel");
        }
    }

    #[test]
    fn batched_writes_fewer_blocks_than_serial() {
        let n = [5u32, 5];
        let map = StandardTiling::new(&n, &[2, 2]);
        let mut rng = SplitMix64::new(3);
        let boxes = random_boxes(&mut rng, &[32, 32], 24);

        // Tiny pool (1 block) so every tile touch after an eviction is a
        // real block write; this is where coalescing pays.
        let serial_stats = IoStats::default();
        let mut serial = mem_store(map.clone(), 1, serial_stats.clone());
        for (origin, delta) in &boxes {
            ss_transform::update_box_standard(&mut serial, &n, origin, delta);
        }
        let batched_stats = IoStats::default();
        let mut batched = mem_store(map.clone(), 1, batched_stats.clone());
        let report = update_boxes_standard(&mut batched, &n, &boxes, FlushMode::Exact);
        let sw = serial_stats.snapshot().block_writes;
        let bw = batched_stats.snapshot().block_writes;
        assert_eq!(bw, report.flush.tiles_written);
        assert!(
            bw < sw,
            "batched flush should write fewer blocks ({bw} vs {sw})"
        );
    }

    #[test]
    fn coalesced_ingest_matches_per_chunk_driver() {
        let mut rng = SplitMix64::new(99);
        let data = NdArray::from_fn(Shape::new(&[16, 16]), |_| rng.range(-10.0, 10.0));
        let src = ArraySource::new(&data, &[2, 2]);
        let map = StandardTiling::new(&[4, 4], &[2, 2]);

        let mut per_chunk = mem_store(map.clone(), 4, IoStats::default());
        ss_transform::transform_standard(&src, &mut per_chunk, false);
        for group in [0usize, 1, 4, 7] {
            let stats = IoStats::default();
            let mut coalesced = mem_store(map.clone(), 4, stats.clone());
            let report =
                transform_standard_coalesced(&src, &mut coalesced, group, FlushMode::Exact);
            assert_eq!(report.chunks, 16);
            let expect_flushes = if group == 0 {
                1
            } else {
                16usize.div_ceil(group)
            };
            assert_eq!(report.flushes, expect_flushes, "group={group}");
            assert_stores_identical(&mut per_chunk, &mut coalesced, "ingest");
        }
    }

    #[test]
    fn coalescing_ratio_grows_with_group_size() {
        let mut rng = SplitMix64::new(5);
        let data = NdArray::from_fn(Shape::new(&[32, 32]), |_| rng.range(-1.0, 1.0));
        let src = ArraySource::new(&data, &[2, 2]);
        let map = StandardTiling::new(&[5, 5], &[2, 2]);
        let mut prev = 0.0f64;
        for group in [1usize, 4, 16, 64] {
            let mut cs = mem_store(map.clone(), 4, IoStats::default());
            let report = transform_standard_coalesced(&src, &mut cs, group, FlushMode::Exact);
            let ratio = report.flush.coalescing_ratio();
            assert!(
                ratio >= prev,
                "group {group}: ratio {ratio} should not shrink (prev {prev})"
            );
            prev = ratio;
        }
        assert!(prev > 1.0, "large groups must coalesce ({prev})");
    }
}
