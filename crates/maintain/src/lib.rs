//! Coalesced SHIFT-SPLIT maintenance (the I/O argument of Sections 4–5,
//! applied to *batches* of updates).
//!
//! A single box update already coalesces its own deltas per tile, but a
//! workload of many boxes (or a chunked ingest) repeatedly re-reads and
//! re-writes the tiles near the top of the wavelet tree: every box SPLITs
//! into the same `O(log N)` coarse coefficients, so a per-box
//! read-modify-write cycle pays one block write *per box* for tiles that a
//! batched scheme would write once. This crate buffers the SHIFT-SPLIT
//! delta streams of many operations **tile-major** in memory and applies
//! them with one group-commit flush:
//!
//! * [`DeltaBuffer`] — accumulates `(tile, slot, delta)` contributions
//!   keyed by tile ordinal, merging work destined for the same block,
//! * [`DeltaBuffer::flush_into`] — exactly one read-modify-write per dirty
//!   tile, visited in ascending block order (sequential I/O for
//!   `FileBlockStore`), followed by a single pool flush (one meta/CRC
//!   writeback per *flush*, not per box),
//! * [`DeltaBuffer::flush_into_shared`] — the same flush sharded over a
//!   worker pool: dirty tiles are partitioned into contiguous ranges, each
//!   tile is owned by exactly one worker, so results are bit-identical to
//!   the serial flush for any worker count,
//! * [`engine`] — box-batch drivers ([`update_boxes_standard`],
//!   [`update_boxes_nonstandard`], parallel twins) and a coalesced ingest
//!   driver ([`transform_standard_coalesced`]) that group-commits every
//!   `group` chunks.
//!
//! # Exactness
//!
//! Floating-point addition is not associative, so summing several deltas
//! to one coefficient in memory and applying the sum is *not* bit-identical
//! to applying them one at a time. [`FlushMode`] makes the trade explicit:
//!
//! * [`FlushMode::Exact`] (default) keeps each tile's deltas as an
//!   arrival-ordered op list and replays it during the single per-tile
//!   read-modify-write. The per-coefficient addition sequence is exactly
//!   the serial per-box sequence, so the result is **bit-identical** to
//!   [`ss_transform::update_box_standard`] applied box by box — while
//!   still writing each dirty tile once.
//! * [`FlushMode::Merged`] pre-sums deltas into a dense per-tile
//!   accumulator and applies one add per touched coefficient — the
//!   smallest possible flush, equal to the serial path only up to
//!   floating-point rounding.
//!
//! Observability: flushes publish `maintain.*` counters, gauges, and
//! histograms to the global [`ss_obs`] registry (boxes and deltas
//! buffered, dirty/written tiles, coalescing ratio, flush latency);
//! live serving adds `snapshot.*` (epoch, pins, commits, folds, live
//! versions) and `wal.*` (appends, bytes, resets, torn tails, replays).
//!
//! # Live read/write serving
//!
//! Batch maintenance assumes exclusive ownership of the store. For
//! serving queries *while* absorbing updates, [`snapshot`] layers MVCC on
//! top of the same buffer: [`SnapshotCoeffStore`] publishes immutable
//! epoch versions (readers pin one, writers group-commit the next), and
//! [`wal`] makes each commit durable ahead of the tile writeback with a
//! CRC-framed write-ahead log whose records replay to a bit-identical
//! state after a crash (format: `docs/FORMAT.md` §7).

//!
//! # Example
//!
//! Buffer two box updates and group-commit them with one write per
//! dirty tile — bit-identical to applying the boxes one at a time:
//!
//! ```
//! use ss_core::tiling::StandardTiling;
//! use ss_core::TilingMap;
//! use ss_maintain::{DeltaBuffer, FlushMode};
//! use ss_storage::{wstore::mem_store, IoStats};
//!
//! let map = StandardTiling::new(&[4, 4], &[2, 2]); // 16x16, 4x4 tiles
//! let mut cs = mem_store(map.clone(), 1 << 10, IoStats::new());
//!
//! let mut buf = DeltaBuffer::new(map.block_capacity(), FlushMode::Exact);
//! // Two overlapping single-coefficient updates destined for one tile:
//! buf.begin_box();
//! buf.add(3, 1, 0.5);
//! buf.begin_box();
//! buf.add(3, 1, 0.25);
//! let report = buf.flush_into(&mut cs);
//!
//! assert_eq!(report.boxes, 2);
//! assert_eq!(report.tiles_written, 1); // coalesced: one RMW, not two
//! assert_eq!(cs.read_at(3, 1), 0.75);
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod engine;
pub mod snapshot;
pub mod wal;

pub use buffer::{DeltaBuffer, DrainedTileOps, FlushMode, FlushReport};
pub use engine::{
    transform_standard_coalesced, update_boxes_nonstandard, update_boxes_nonstandard_parallel,
    update_boxes_standard, update_boxes_standard_parallel, BatchReport, IngestReport,
};
pub use snapshot::{PinnedSnapshot, SnapshotCoeffStore};
pub use wal::{replay_records, Wal, WalRecord, WalScan, WalTile};
