//! Write-ahead delta log for group-commit maintenance.
//!
//! Before a commit's drained `(tile, ops)` stream touches the base store,
//! it is appended here as one CRC-framed record carrying both the logical
//! op list *and* the committed post-image of every dirty tile. The
//! post-images are what make replay idempotent: a `+=` delta replayed
//! twice corrupts, an overwrite replayed twice is a no-op, so a crash at
//! *any* point between the WAL fsync and the (much later) fold of tiles
//! into the base store replays to a bit-identical coefficient state. The
//! framing is normative in `docs/FORMAT.md` §7; the commit protocol and
//! crash matrix are in `DESIGN.md` §12.
//!
//! The log is an append-only file:
//!
//! ```text
//! magic "SSWSWAL1" (8 bytes)
//! record*          (length/CRC framed, see below)
//! ```
//!
//! A torn tail — a record cut short or failing its CRC — marks the crash
//! point: every record before it is intact (each fsynced before the
//! commit was acknowledged), everything from it on is discarded on open.
//! After a checkpoint folds all published epochs into the base store and
//! syncs it, the log is truncated back to the magic.

use ss_storage::crc::crc32;
use ss_storage::{BlockStore, SharedCoeffStore, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic, 8 bytes.
pub const WAL_MAGIC: &[u8; 8] = b"SSWSWAL1";

/// One committed epoch's dirty tiles.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// The epoch this commit published.
    pub epoch: u64,
    /// Dirty tiles, ascending by ordinal.
    pub tiles: Vec<WalTile>,
}

/// One dirty tile within a [`WalRecord`].
#[derive(Clone, Debug, PartialEq)]
pub struct WalTile {
    /// Tile ordinal.
    pub tile: usize,
    /// The drained `(slot, delta)` op list — the logical audit stream.
    pub ops: Vec<(usize, f64)>,
    /// The tile's full contents *after* this epoch — the physical redo
    /// image replay overwrites with.
    pub image: Vec<f64>,
}

/// Outcome of scanning a log on open.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalScan {
    /// Intact records recovered.
    pub records: usize,
    /// Whether a torn tail (short or CRC-failing record) was discarded.
    pub torn_tail: bool,
}

/// An append-only, CRC-framed write-ahead log.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Byte offset of the end of the last intact record.
    end: u64,
    /// Epoch of the last record appended or recovered (0 when none).
    last_epoch: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, scanning it for
    /// intact records. A torn tail is truncated away. Returns the log
    /// positioned for appending plus every recovered record in commit
    /// order — the caller replays them before serving.
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>, WalScan), StorageError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StorageError::io(format!("open WAL {}", path.display()), e))?;
        let len = file
            .metadata()
            .map_err(|e| StorageError::io("stat WAL", e))?
            .len();
        if len < WAL_MAGIC.len() as u64 {
            // Fresh (or torn-at-birth) log: write the magic.
            file.set_len(0)
                .and_then(|_| file.seek(SeekFrom::Start(0)))
                .and_then(|_| file.write_all(WAL_MAGIC))
                .and_then(|_| file.sync_data())
                .map_err(|e| StorageError::io("initialise WAL", e))?;
            let wal = Wal {
                file,
                path: path.to_path_buf(),
                end: WAL_MAGIC.len() as u64,
                last_epoch: 0,
            };
            return Ok((wal, Vec::new(), WalScan::default()));
        }
        let mut magic = [0u8; 8];
        file.seek(SeekFrom::Start(0))
            .and_then(|_| file.read_exact(&mut magic))
            .map_err(|e| StorageError::io("read WAL magic", e))?;
        if &magic != WAL_MAGIC {
            return Err(StorageError::Meta(format!(
                "{}: not a WAL (bad magic)",
                path.display()
            )));
        }
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StorageError::io("read WAL body", e))?;
        let (records, intact_len, torn) = scan_records(&bytes);
        let end = WAL_MAGIC.len() as u64 + intact_len as u64;
        if torn {
            file.set_len(end)
                .map_err(|e| StorageError::io("truncate torn WAL tail", e))?;
            ss_obs::global().counter("wal.torn_tails").inc();
        }
        file.seek(SeekFrom::Start(end))
            .map_err(|e| StorageError::io("seek WAL end", e))?;
        let scan = WalScan {
            records: records.len(),
            torn_tail: torn,
        };
        ss_obs::global()
            .counter("wal.records_recovered")
            .add(records.len() as u64);
        let last_epoch = records.last().map_or(0, |r| r.epoch);
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            end,
            last_epoch,
        };
        Ok((wal, records, scan))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Epoch of the newest durable record (0 when the log is empty).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Appends one record and fsyncs. When this returns, the commit is
    /// durable: any crash after this point replays it.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StorageError> {
        let mut sw = ss_obs::Stopwatch::start();
        let body = encode_body(record);
        let mut framed = Vec::with_capacity(body.len() + 8);
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&body).to_le_bytes());
        framed.extend_from_slice(&body);
        self.file
            .seek(SeekFrom::Start(self.end))
            .and_then(|_| self.file.write_all(&framed))
            .map_err(|e| StorageError::io("append WAL record", e))?;
        ss_obs::trace::pipeline_event(ss_obs::TraceEventKind::WalAppend {
            epoch: record.epoch,
            bytes: framed.len() as u64,
        });
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("fsync WAL record", e))?;
        ss_obs::trace::pipeline_event(ss_obs::TraceEventKind::WalFsync {
            epoch: record.epoch,
        });
        self.end += framed.len() as u64;
        self.last_epoch = record.epoch;
        let g = ss_obs::global();
        g.counter("wal.appends").inc();
        g.counter("wal.bytes_appended").add(framed.len() as u64);
        g.histogram("wal.append_ns").record(sw.lap_ns());
        Ok(())
    }

    /// Truncates the log back to the magic — called after a checkpoint
    /// has folded every logged epoch into the base store *and* synced it.
    pub fn reset(&mut self) -> Result<(), StorageError> {
        let end = WAL_MAGIC.len() as u64;
        self.file
            .set_len(end)
            .and_then(|_| self.file.sync_data())
            .map_err(|e| StorageError::io("reset WAL", e))?;
        self.file
            .seek(SeekFrom::Start(end))
            .map_err(|e| StorageError::io("seek WAL start", e))?;
        self.end = end;
        ss_obs::global().counter("wal.resets").inc();
        Ok(())
    }
}

/// Serialises a record body (everything the frame's length/CRC cover).
fn encode_body(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&record.epoch.to_le_bytes());
    out.extend_from_slice(&(record.tiles.len() as u32).to_le_bytes());
    for t in &record.tiles {
        out.extend_from_slice(&(t.tile as u64).to_le_bytes());
        out.extend_from_slice(&(t.ops.len() as u32).to_le_bytes());
        out.extend_from_slice(&(t.image.len() as u32).to_le_bytes());
        for &(slot, delta) in &t.ops {
            out.extend_from_slice(&(slot as u32).to_le_bytes());
            out.extend_from_slice(&delta.to_le_bytes());
        }
        for &v in &t.image {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Decodes one record body; `None` on any truncation or overflow (which
/// the framing CRC should already have caught).
fn decode_body(body: &[u8]) -> Option<WalRecord> {
    let mut p = 0usize;
    let take = |p: &mut usize, n: usize| -> Option<&[u8]> {
        let s = body.get(*p..*p + n)?;
        *p += n;
        Some(s)
    };
    let epoch = u64::from_le_bytes(take(&mut p, 8)?.try_into().ok()?);
    let ntiles = u32::from_le_bytes(take(&mut p, 4)?.try_into().ok()?) as usize;
    let mut tiles = Vec::with_capacity(ntiles.min(1 << 20));
    for _ in 0..ntiles {
        let tile = u64::from_le_bytes(take(&mut p, 8)?.try_into().ok()?) as usize;
        let nops = u32::from_le_bytes(take(&mut p, 4)?.try_into().ok()?) as usize;
        let cap = u32::from_le_bytes(take(&mut p, 4)?.try_into().ok()?) as usize;
        let mut ops = Vec::with_capacity(nops.min(1 << 20));
        for _ in 0..nops {
            let slot = u32::from_le_bytes(take(&mut p, 4)?.try_into().ok()?) as usize;
            let delta = f64::from_le_bytes(take(&mut p, 8)?.try_into().ok()?);
            ops.push((slot, delta));
        }
        let mut image = Vec::with_capacity(cap.min(1 << 20));
        for _ in 0..cap {
            image.push(f64::from_le_bytes(take(&mut p, 8)?.try_into().ok()?));
        }
        tiles.push(WalTile { tile, ops, image });
    }
    if p == body.len() {
        Some(WalRecord { epoch, tiles })
    } else {
        None
    }
}

/// Walks the framed records in `bytes`, returning the intact prefix as
/// decoded records, its byte length, and whether a torn tail follows.
fn scan_records(bytes: &[u8]) -> (Vec<WalRecord>, usize, bool) {
    let mut records = Vec::new();
    let mut p = 0usize;
    loop {
        if p == bytes.len() {
            return (records, p, false); // clean end
        }
        if bytes.len() - p < 8 {
            return (records, p, true); // torn frame header
        }
        let len = u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[p + 4..p + 8].try_into().unwrap());
        if bytes.len() - p - 8 < len {
            return (records, p, true); // torn body
        }
        let body = &bytes[p + 8..p + 8 + len];
        if crc32(body) != crc {
            return (records, p, true); // corrupt body
        }
        match decode_body(body) {
            Some(rec) => records.push(rec),
            None => return (records, p, true),
        }
        p += 8 + len;
    }
}

/// Applies recovered records to a shared store: every tile post-image is
/// overwritten in commit order, then the pool is flushed. Idempotent —
/// replaying on top of an already partially (or fully) folded base store
/// rewrites the same bits. Returns the number of tile overwrites.
pub fn replay_records<M: ss_core::TilingMap, S: BlockStore>(
    records: &[WalRecord],
    cs: &SharedCoeffStore<M, S>,
) -> u64 {
    let mut tiles = 0u64;
    for rec in records {
        for t in &rec.tiles {
            cs.overwrite_tile(t.tile, &t.image);
            tiles += 1;
        }
    }
    if tiles > 0 {
        cs.flush();
    }
    ss_obs::global().counter("wal.tiles_replayed").add(tiles);
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_core::Tiling1d;
    use ss_storage::{mem_shared_store, IoStats};

    fn record(epoch: u64) -> WalRecord {
        WalRecord {
            epoch,
            tiles: vec![
                WalTile {
                    tile: 0,
                    ops: vec![(0, 1.5), (3, -2.0)],
                    image: vec![1.5, 0.0, 0.0, -2.0],
                },
                WalTile {
                    tile: 2,
                    ops: vec![(1, epoch as f64)],
                    image: vec![0.0, epoch as f64, 0.0, 0.0],
                },
            ],
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ss_wal_{}_{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("log.wal")
    }

    #[test]
    fn append_reopen_roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut wal, recs, scan) = Wal::open(&path).unwrap();
        assert!(recs.is_empty());
        assert!(!scan.torn_tail);
        wal.append(&record(1)).unwrap();
        wal.append(&record(2)).unwrap();
        assert_eq!(wal.last_epoch(), 2);
        drop(wal);
        let (wal, recs, scan) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![record(1), record(2)]);
        assert_eq!(scan.records, 2);
        assert!(!scan.torn_tail);
        assert_eq!(wal.last_epoch(), 2);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(&record(1)).unwrap();
        wal.append(&record(2)).unwrap();
        drop(wal);
        // Chop mid-way through the second record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 11).unwrap();
        drop(f);
        let (wal, recs, scan) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![record(1)]);
        assert!(scan.torn_tail);
        drop(wal);
        // After truncation the log reopens clean.
        let (_, recs, scan) = Wal::open(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(!scan.torn_tail);
    }

    #[test]
    fn corrupt_body_stops_the_scan() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(&record(1)).unwrap();
        let end = wal.end;
        wal.append(&record(2)).unwrap();
        drop(wal);
        // Flip a byte inside the second record's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = end as usize + 12;
        bytes[victim] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, recs, scan) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![record(1)]);
        assert!(scan.torn_tail);
    }

    #[test]
    fn reset_truncates_to_magic() {
        let path = tmp("reset");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _, _) = Wal::open(&path).unwrap();
        wal.append(&record(7)).unwrap();
        wal.reset().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 8);
        wal.append(&record(8)).unwrap();
        drop(wal);
        let (_, recs, _) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![record(8)]);
    }

    #[test]
    fn replay_is_idempotent() {
        let cs = mem_shared_store(Tiling1d::new(4, 2), 8, 2, IoStats::new());
        let recs = vec![record(1), record(2)];
        replay_records(&recs, &cs);
        let once: Vec<f64> = (0..4).map(|s| cs.pool().read(2, s)).collect();
        replay_records(&recs, &cs);
        let twice: Vec<f64> = (0..4).map(|s| cs.pool().read(2, s)).collect();
        assert_eq!(once, twice);
        assert_eq!(cs.pool().read(2, 1), 2.0); // last record wins
    }
}
