//! Epoch-versioned concurrent read/write serving over a shared store.
//!
//! [`SnapshotCoeffStore`] wraps a [`SharedCoeffStore`] and publishes
//! **immutable coefficient versions**: readers pin the current epoch with
//! one atomic increment ([`pin`](SnapshotCoeffStore::pin)) and then see a
//! frozen view no matter how many commits land meanwhile; a writer
//! group-commits the next epoch from a [`DeltaBuffer`]
//! ([`commit`](SnapshotCoeffStore::commit)). Copy-on-write happens only
//! for the tiles dirtied by the in-flight epoch: a commit copies each
//! dirty tile out of the previous version (overlay or base), applies the
//! drained ops in arrival order (bit-identical to
//! [`DeltaBuffer::flush_into_shared`]), and publishes the result as a new
//! overlay entry. The base store is mutated only by
//! [`checkpoint`](SnapshotCoeffStore::checkpoint), which folds the
//! current overlay down once every older version has drained its readers
//! — so a reader never observes a partially applied epoch.
//!
//! Durability: when constructed with a [`Wal`], every commit appends its
//! op stream *and* tile post-images to the log and fsyncs **before**
//! publishing — the WAL append is the commit point. A checkpoint writes
//! the overlay into the base store, flushes and syncs it, then truncates
//! the log. The crash matrix is in `DESIGN.md` §12.

use crate::buffer::{DeltaBuffer, FlushReport};
use crate::wal::{Wal, WalRecord, WalTile};
use ss_core::TilingMap;
use ss_storage::{BlockStore, CoeffRead, SharedCoeffStore, StorageError};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One published, immutable coefficient version.
struct Version {
    epoch: u64,
    /// Tiles changed since the base store's contents, cumulatively: a
    /// commit clones the previous overlay map (sharing unchanged tile
    /// `Arc`s) and replaces only the tiles it dirtied. Reads check here
    /// first, then fall through to the base store.
    overlay: HashMap<usize, Arc<Vec<f64>>>,
    /// Readers currently pinned to this version.
    readers: AtomicU64,
}

/// Serialised writer-side state: the WAL handle plus the version deque.
struct WriterState {
    wal: Option<Wal>,
    /// Every version that may still have pinned readers; the back entry
    /// is always the currently published version.
    versions: VecDeque<Arc<Version>>,
}

/// An epoch-versioned MVCC wrapper over [`SharedCoeffStore`]: concurrent
/// snapshot reads, group-committed writes, WAL-backed durability.
pub struct SnapshotCoeffStore<M: TilingMap, S: BlockStore> {
    base: SharedCoeffStore<M, S>,
    /// The published version readers pin — swapped atomically (under a
    /// short lock) by commit and checkpoint.
    current: Mutex<Arc<Version>>,
    writer: Mutex<WriterState>,
    epoch: AtomicU64,
}

impl<M: TilingMap, S: BlockStore> SnapshotCoeffStore<M, S> {
    /// Wraps `base`, starting at `start_epoch` (0 for a fresh store, the
    /// last replayed epoch after WAL recovery). `wal` is the durability
    /// log; `None` serves without write-ahead logging (tests, memory
    /// stores).
    pub fn new(base: SharedCoeffStore<M, S>, wal: Option<Wal>, start_epoch: u64) -> Self {
        let v0 = Arc::new(Version {
            epoch: start_epoch,
            overlay: HashMap::new(),
            readers: AtomicU64::new(0),
        });
        let mut versions = VecDeque::new();
        versions.push_back(Arc::clone(&v0));
        SnapshotCoeffStore {
            base,
            current: Mutex::new(v0),
            writer: Mutex::new(WriterState { wal, versions }),
            epoch: AtomicU64::new(start_epoch),
        }
    }

    /// The tiling map.
    pub fn map(&self) -> &M {
        self.base.map()
    }

    /// The wrapped base store (reads bypass published-but-unfolded
    /// epochs; use [`pin`](Self::pin) for consistent reads).
    pub fn base(&self) -> &SharedCoeffStore<M, S> {
        &self.base
    }

    /// The currently published epoch (a cheap atomic load).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Pins the current version: the returned reader sees this epoch's
    /// coefficients until dropped, regardless of concurrent commits.
    pub fn pin(&self) -> PinnedSnapshot<'_, M, S> {
        // The increment happens under the `current` lock: once commit or
        // checkpoint swaps the published version (which takes this lock),
        // every pin of the old version is visible in its reader count.
        let guard = self.current.lock().unwrap();
        let version = Arc::clone(&guard);
        version.readers.fetch_add(1, Ordering::AcqRel);
        drop(guard);
        let g = ss_obs::global();
        g.counter("snapshot.pins").inc();
        PinnedSnapshot {
            store: self,
            version,
        }
    }

    /// Group-commits everything buffered in `buf` as the next epoch:
    /// WAL-append + fsync (the commit point), then publish the new
    /// version. Returns the published epoch and the drain report. An
    /// empty buffer is a no-op returning the current epoch.
    pub fn commit(&self, buf: &mut DeltaBuffer) -> Result<(u64, FlushReport), StorageError> {
        let mut sw = ss_obs::Stopwatch::start();
        let mut writer = self.writer.lock().unwrap();
        let (entries, report) = buf.drain_sorted();
        if entries.is_empty() {
            return Ok((self.epoch(), report));
        }
        let prev = writer.versions.back().expect("current version").clone();
        let epoch = prev.epoch + 1;
        // Copy-on-write: only the tiles this epoch dirtied are copied
        // (from the previous overlay if present, else the base store) and
        // mutated; everything else is shared by Arc with `prev`.
        let mut overlay = prev.overlay.clone();
        let mut wal_tiles = Vec::with_capacity(entries.len());
        for (tile, payload) in entries {
            let mut data = match overlay.get(&tile) {
                Some(shared) => shared.as_ref().clone(),
                None => self.base.read_tile(tile),
            };
            payload.apply(&mut data);
            let image = Arc::new(data);
            overlay.insert(tile, Arc::clone(&image));
            wal_tiles.push(WalTile {
                tile,
                ops: payload.into_ops(),
                image: image.as_ref().clone(),
            });
        }
        let committed_tiles = wal_tiles.len() as u64;
        if let Some(wal) = writer.wal.as_mut() {
            wal.append(&WalRecord {
                epoch,
                tiles: wal_tiles,
            })?;
        }
        // Publish: from here on new pins see the new epoch.
        let version = Arc::new(Version {
            epoch,
            overlay,
            readers: AtomicU64::new(0),
        });
        writer.versions.push_back(Arc::clone(&version));
        *self.current.lock().unwrap() = Arc::clone(&version);
        self.epoch.store(epoch, Ordering::Release);
        ss_obs::trace::pipeline_event(ss_obs::TraceEventKind::Commit {
            epoch,
            tiles: committed_tiles,
        });
        // Retire versions that drained while we were committing.
        Self::retire_drained(&mut writer.versions);
        let g = ss_obs::global();
        g.counter("snapshot.commits").inc();
        g.gauge("snapshot.epoch").set(epoch);
        g.gauge("snapshot.live_versions")
            .set(writer.versions.len() as u64);
        g.counter("maintain.boxes_buffered").add(report.boxes);
        g.counter("maintain.deltas_buffered").add(report.deltas);
        g.counter("maintain.tiles_written")
            .add(report.tiles_written);
        g.counter("maintain.tile_touches").add(report.tile_touches);
        g.histogram("snapshot.commit_ns").record(sw.lap_ns());
        Ok((epoch, report))
    }

    /// Drops every non-current version whose readers have drained. The
    /// back entry (the published version) always stays. Versions other
    /// than the published one can never *gain* readers (pins always
    /// clone `current`), so a drained count of zero is final.
    fn retire_drained(versions: &mut VecDeque<Arc<Version>>) {
        while versions.len() > 1 {
            if versions
                .front()
                .expect("non-empty")
                .readers
                .load(Ordering::Acquire)
                == 0
            {
                versions.pop_front();
            } else {
                break;
            }
        }
    }

    /// Folds the published overlay into the base store, syncs it, and
    /// truncates the WAL — if and only if every *older* version has
    /// drained its readers (readers pinned at the current epoch are safe:
    /// the fold writes exactly the tile images they already see).
    /// Returns `true` when the fold ran, `false` when blocked by a
    /// pinned older reader.
    pub fn checkpoint(&self) -> Result<bool, StorageError> {
        let mut writer = self.writer.lock().unwrap();
        Self::retire_drained(&mut writer.versions);
        if writer.versions.len() > 1 {
            // An older epoch is still pinned; folding now could expose
            // newer tile contents through its base-store fallthrough.
            return Ok(false);
        }
        let cur = writer.versions.back().expect("current version").clone();
        if cur.overlay.is_empty() {
            return Ok(true); // nothing published since the last fold
        }
        let mut tiles: Vec<_> = cur.overlay.iter().collect();
        tiles.sort_unstable_by_key(|&(tile, _)| *tile);
        for (tile, image) in tiles {
            self.base.overwrite_tile(*tile, image);
        }
        self.base.flush();
        self.base.sync()?;
        if let Some(wal) = writer.wal.as_mut() {
            wal.reset()?;
        }
        // Republish the same epoch with an empty overlay. Readers still
        // pinned to `cur` keep its overlay Arc and read identical bits
        // (the base now holds exactly those images); `cur` stays in the
        // deque until they drain, which blocks the *next* fold.
        let fresh = Arc::new(Version {
            epoch: cur.epoch,
            overlay: HashMap::new(),
            readers: AtomicU64::new(0),
        });
        // Swap first, then test the old version's readers: pins happen
        // under the `current` lock, so after the swap `cur` can only
        // lose readers, never gain them — the test below is race-free.
        *self.current.lock().unwrap() = Arc::clone(&fresh);
        if cur.readers.load(Ordering::Acquire) == 0 {
            writer.versions.pop_back();
        }
        writer.versions.push_back(fresh);
        ss_obs::trace::pipeline_event(ss_obs::TraceEventKind::Checkpoint { epoch: cur.epoch });
        let g = ss_obs::global();
        g.counter("snapshot.folds").inc();
        g.gauge("snapshot.live_versions")
            .set(writer.versions.len() as u64);
        Ok(true)
    }

    /// Checkpoints (retrying until older readers drain) and returns the
    /// base store parts. Intended for shutdown, after all readers exit.
    pub fn into_parts(self) -> Result<(M, S), StorageError> {
        while !self.checkpoint()? {
            std::thread::yield_now();
        }
        Ok(self.base.into_parts())
    }
}

/// A read guard over one pinned epoch. Implements [`CoeffRead`] (and so
/// does `&PinnedSnapshot`, for sharing one pin across query workers):
/// overlay tiles are served from the immutable published images, all
/// other tiles fall through to the base store's sharded pool.
pub struct PinnedSnapshot<'a, M: TilingMap, S: BlockStore> {
    store: &'a SnapshotCoeffStore<M, S>,
    version: Arc<Version>,
}

impl<M: TilingMap, S: BlockStore> PinnedSnapshot<'_, M, S> {
    /// The epoch this snapshot is pinned to.
    pub fn epoch(&self) -> u64 {
        self.version.epoch
    }

    /// Reads a raw `(tile, slot)` location at this epoch.
    pub fn get(&self, tile: usize, slot: usize) -> f64 {
        match self.version.overlay.get(&tile) {
            Some(image) => image[slot],
            None => self.store.base.pool().read(tile, slot),
        }
    }
}

impl<M: TilingMap, S: BlockStore> Drop for PinnedSnapshot<'_, M, S> {
    fn drop(&mut self) {
        self.version.readers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<M: TilingMap, S: BlockStore> CoeffRead for PinnedSnapshot<'_, M, S> {
    type Map = M;

    fn map(&self) -> &M {
        self.store.base.map()
    }

    fn read(&mut self, idx: &[usize]) -> f64 {
        let loc = TilingMap::locate(self.store.base.map(), idx);
        self.get(loc.tile, loc.slot)
    }

    fn read_at(&mut self, tile: usize, slot: usize) -> f64 {
        self.store.base.stats().add_coeff_reads(1);
        self.get(tile, slot)
    }
}

impl<M: TilingMap, S: BlockStore> CoeffRead for &PinnedSnapshot<'_, M, S> {
    type Map = M;

    fn map(&self) -> &M {
        self.store.base.map()
    }

    fn read(&mut self, idx: &[usize]) -> f64 {
        let loc = TilingMap::locate(self.store.base.map(), idx);
        self.get(loc.tile, loc.slot)
    }

    fn read_at(&mut self, tile: usize, slot: usize) -> f64 {
        self.store.base.stats().add_coeff_reads(1);
        self.get(tile, slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::FlushMode;
    use ss_core::Tiling1d;
    use ss_storage::{mem_shared_store, IoStats};

    fn snap_store() -> SnapshotCoeffStore<Tiling1d, ss_storage::MemBlockStore> {
        let base = mem_shared_store(Tiling1d::new(4, 2), 8, 2, IoStats::new());
        SnapshotCoeffStore::new(base, None, 0)
    }

    #[test]
    fn pinned_reader_sees_its_epoch_not_later_commits() {
        let s = snap_store();
        let mut buf = DeltaBuffer::new(4, FlushMode::Exact);
        buf.begin_box();
        buf.add(0, 1, 5.0);
        s.commit(&mut buf).unwrap();

        let pin1 = s.pin();
        assert_eq!(pin1.epoch(), 1);
        assert_eq!(pin1.get(0, 1), 5.0);

        buf.begin_box();
        buf.add(0, 1, 2.0);
        let (epoch, _) = s.commit(&mut buf).unwrap();
        assert_eq!(epoch, 2);

        // The old pin is frozen; a new pin sees the new epoch.
        assert_eq!(pin1.get(0, 1), 5.0);
        let pin2 = s.pin();
        assert_eq!(pin2.get(0, 1), 7.0);
    }

    #[test]
    fn checkpoint_blocked_by_old_reader_then_folds() {
        let s = snap_store();
        let mut buf = DeltaBuffer::new(4, FlushMode::Exact);
        buf.begin_box();
        buf.add(2, 0, 1.0);
        s.commit(&mut buf).unwrap();
        let old = s.pin(); // pinned at epoch 1
        buf.begin_box();
        buf.add(2, 0, 1.0);
        s.commit(&mut buf).unwrap(); // epoch 2; epoch-1 version still pinned
        assert!(!s.checkpoint().unwrap());
        assert_eq!(old.get(2, 0), 1.0);
        drop(old);
        assert!(s.checkpoint().unwrap());
        // Folded: the base store itself now holds the committed value.
        assert_eq!(s.base().pool().read(2, 0), 2.0);
        // And a post-fold pin still reads correctly (empty overlay).
        assert_eq!(s.pin().get(2, 0), 2.0);
    }

    #[test]
    fn reader_pinned_at_current_epoch_survives_a_fold() {
        let s = snap_store();
        let mut buf = DeltaBuffer::new(4, FlushMode::Exact);
        buf.begin_box();
        buf.add(1, 2, 4.0);
        s.commit(&mut buf).unwrap();
        let pin = s.pin(); // current epoch: fold is allowed around it
        assert!(s.checkpoint().unwrap());
        assert_eq!(pin.get(1, 2), 4.0);
        // The pinned old-current version must block the *next* fold from
        // exposing future tiles through its base fallthrough.
        buf.begin_box();
        buf.add(3, 3, 9.0);
        s.commit(&mut buf).unwrap();
        assert!(!s.checkpoint().unwrap());
        assert_eq!(pin.get(3, 3), 0.0); // still reads its own epoch
        drop(pin);
        assert!(s.checkpoint().unwrap());
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let s = snap_store();
        let mut buf = DeltaBuffer::new(4, FlushMode::Exact);
        let (epoch, report) = s.commit(&mut buf).unwrap();
        assert_eq!(epoch, 0);
        assert_eq!(report, FlushReport::default());
    }
}
