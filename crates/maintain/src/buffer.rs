//! Tile-major delta buffering and group-commit flush.

use ss_core::TilingMap;
use ss_obs::Stopwatch;
use ss_storage::{BlockStore, CoeffStore, SharedCoeffStore};
use std::collections::HashMap;

/// How buffered deltas are reduced at flush time.
///
/// See the crate docs for the exactness discussion; the short version is
/// that [`Exact`](FlushMode::Exact) replays deltas in arrival order (bit
/// -identical to the serial per-box path, same I/O as `Merged`), while
/// [`Merged`](FlushMode::Merged) pre-sums them (one add per coefficient,
/// tolerance-equal only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FlushMode {
    /// Arrival-ordered replay: bit-identical to serial per-box updates.
    #[default]
    Exact,
    /// Dense per-tile accumulation: one add per touched coefficient.
    Merged,
}

impl FlushMode {
    /// Parses the CLI spelling (`exact` / `merged`), case-insensitively.
    pub fn parse(s: &str) -> Option<FlushMode> {
        if s.eq_ignore_ascii_case("exact") {
            Some(FlushMode::Exact)
        } else if s.eq_ignore_ascii_case("merged") {
            Some(FlushMode::Merged)
        } else {
            None
        }
    }
}

/// A drained tile's delta payload, ready to apply.
pub(crate) enum TileApply {
    /// Arrival-ordered `(slot, delta)` op list — exact replay.
    Sparse(Vec<(usize, f64)>),
    /// Dense per-slot accumulator (merged mode), applied in one
    /// vectorised masked pass; `touched` counts its non-zero slots.
    Dense { acc: Vec<f64>, touched: u64 },
}

impl TileApply {
    /// Coefficient writes this payload performs — the op-list length, or
    /// the number of touched slots of the dense accumulator.
    fn ops(&self) -> u64 {
        match self {
            TileApply::Sparse(ops) => ops.len() as u64,
            TileApply::Dense { touched, .. } => *touched,
        }
    }

    /// Applies the payload to one tile's block.
    pub(crate) fn apply(&self, blk: &mut [f64]) {
        match self {
            TileApply::Sparse(ops) => {
                for &(slot, delta) in ops {
                    blk[slot] += delta;
                }
            }
            TileApply::Dense { acc, .. } => ss_core::kernel::masked_add(blk, acc),
        }
    }

    /// Lowers the payload to a slot-ascending sparse op list — the WAL's
    /// serialisation format.
    pub(crate) fn into_ops(self) -> Vec<(usize, f64)> {
        match self {
            TileApply::Sparse(ops) => ops,
            TileApply::Dense { acc, .. } => acc
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(slot, &v)| (slot, v))
                .collect(),
        }
    }
}

/// A drained tile and its delta payload.
type TileOps = (usize, TileApply);

/// A drained tile and its arrival-ordered `(slot, delta)` op list, as
/// produced by [`DeltaBuffer::drain_ops`].
pub type DrainedTileOps = (usize, Vec<(usize, f64)>);

/// Per-tile buffered state.
enum TileData {
    /// Arrival-ordered `(slot, delta)` op list.
    Exact(Vec<(usize, f64)>),
    /// Dense accumulator indexed by slot.
    Merged(Vec<f64>),
}

struct TileBuf {
    /// `box_seq` value of the last operation that touched this tile; used
    /// to count distinct (operation, tile) incidences in O(1) per add.
    stamp: u64,
    data: TileData,
}

/// Outcome of one group-commit flush (or a merge of several).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Buffered operations (boxes, chunks) drained by the flush.
    pub boxes: u64,
    /// Individual coefficient deltas drained.
    pub deltas: u64,
    /// Dirty tiles written — exactly one read-modify-write each.
    pub tiles_written: u64,
    /// Distinct (operation, tile) incidences: the number of tile
    /// read-modify-writes a per-operation path would have performed.
    pub tile_touches: u64,
}

impl FlushReport {
    /// `tile_touches / tiles_written` — how many per-operation tile writes
    /// each coalesced write replaced. 1.0 when nothing coalesced (or the
    /// flush was empty); grows with batch size as boxes overlap on the
    /// split paths near the root.
    pub fn coalescing_ratio(&self) -> f64 {
        if self.tiles_written == 0 {
            1.0
        } else {
            self.tile_touches as f64 / self.tiles_written as f64
        }
    }

    /// Accumulates another flush into this report.
    pub fn merge(&mut self, other: FlushReport) {
        self.boxes += other.boxes;
        self.deltas += other.deltas;
        self.tiles_written += other.tiles_written;
        self.tile_touches += other.tile_touches;
    }
}

/// Accumulates SHIFT-SPLIT delta streams from many operations, keyed by
/// tile ordinal, for a single group-commit flush.
///
/// Feed it with [`begin_box`](DeltaBuffer::begin_box) +
/// [`add`](DeltaBuffer::add) (or [`add_at`](DeltaBuffer::add_at) for tuple
/// indices), then drain with [`flush_into`](DeltaBuffer::flush_into) or
/// [`flush_into_shared`](DeltaBuffer::flush_into_shared). The buffer is
/// reusable: a flush resets it to empty.
pub struct DeltaBuffer {
    mode: FlushMode,
    block_capacity: usize,
    tiles: HashMap<usize, TileBuf>,
    /// Monotonic operation counter; bumped by `begin_box`.
    box_seq: u64,
    /// True when a delta arrived before the first `begin_box` — that run
    /// of deltas is one implicit operation, counted alongside `box_seq`.
    implicit_box: bool,
    deltas: u64,
    tile_touches: u64,
}

impl DeltaBuffer {
    /// An empty buffer for blocks of `block_capacity` coefficients.
    pub fn new(block_capacity: usize, mode: FlushMode) -> Self {
        assert!(block_capacity >= 1);
        DeltaBuffer {
            mode,
            block_capacity,
            tiles: HashMap::new(),
            box_seq: 0,
            implicit_box: false,
            deltas: 0,
            tile_touches: 0,
        }
    }

    /// Convenience constructor taking the block capacity from a tiling map.
    pub fn for_map(map: &impl TilingMap, mode: FlushMode) -> Self {
        DeltaBuffer::new(map.block_capacity(), mode)
    }

    /// The flush mode this buffer was built with.
    pub fn mode(&self) -> FlushMode {
        self.mode
    }

    /// Marks the start of a new buffered operation (update box, ingest
    /// chunk). Needed only for the coalescing accounting — deltas added
    /// before the first `begin_box` count as one implicit operation.
    pub fn begin_box(&mut self) {
        self.box_seq += 1;
    }

    /// Buffers one coefficient delta.
    pub fn add(&mut self, tile: usize, slot: usize, delta: f64) {
        debug_assert!(slot < self.block_capacity);
        if self.box_seq == 0 {
            self.implicit_box = true;
        }
        let buf = self.tiles.entry(tile).or_insert_with(|| TileBuf {
            stamp: u64::MAX,
            data: match self.mode {
                FlushMode::Exact => TileData::Exact(Vec::new()),
                FlushMode::Merged => TileData::Merged(vec![0.0; self.block_capacity]),
            },
        });
        if buf.stamp != self.box_seq {
            buf.stamp = self.box_seq;
            self.tile_touches += 1;
        }
        match &mut buf.data {
            TileData::Exact(ops) => ops.push((slot, delta)),
            TileData::Merged(acc) => acc[slot] += delta,
        }
        self.deltas += 1;
    }

    /// Buffers one delta addressed by coefficient tuple index.
    pub fn add_at(&mut self, map: &impl TilingMap, idx: &[usize], delta: f64) {
        let loc = map.locate(idx);
        self.add(loc.tile, loc.slot, delta);
    }

    /// Number of distinct dirty tiles currently buffered.
    pub fn dirty_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Number of individual deltas currently buffered.
    pub fn pending_deltas(&self) -> u64 {
        self.deltas
    }

    /// Number of operations started since the last flush.
    pub fn boxes(&self) -> u64 {
        self.box_seq
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Drains the buffer into sorted `(tile, payload)` pairs, resetting
    /// it. Merged tiles keep their dense accumulator (applied as one
    /// vectorised masked pass); merged tiles whose deltas **fully
    /// cancelled** are dropped here, *before* `tiles_written` is counted,
    /// so they neither dirty a block nor charge a write — they still
    /// count in `tile_touches`, which records what a per-operation path
    /// would have done.
    pub(crate) fn drain_sorted(&mut self) -> (Vec<TileOps>, FlushReport) {
        let mut entries: Vec<TileOps> = self
            .tiles
            .drain()
            .filter_map(|(tile, buf)| {
                let payload = match buf.data {
                    TileData::Exact(ops) => TileApply::Sparse(ops),
                    TileData::Merged(acc) => {
                        let touched = acc.iter().filter(|&&v| v != 0.0).count() as u64;
                        if touched == 0 {
                            return None;
                        }
                        TileApply::Dense { acc, touched }
                    }
                };
                Some((tile, payload))
            })
            .collect();
        entries.sort_unstable_by_key(|&(tile, _)| tile);
        let report = FlushReport {
            boxes: self.box_seq + u64::from(self.implicit_box),
            deltas: self.deltas,
            tiles_written: entries.len() as u64,
            tile_touches: self.tile_touches,
        };
        self.box_seq = 0;
        self.implicit_box = false;
        self.deltas = 0;
        self.tile_touches = 0;
        (entries, report)
    }

    /// Drains the buffer into tile-ascending `(tile, ops)` lists — each
    /// op a `(slot, delta)` pair in arrival order — resetting the
    /// buffer. This is the scatter form a shard router consumes: tiles
    /// group naturally by owning shard range, and replaying each tile's
    /// op list in order at its owner is bit-identical to flushing the
    /// whole buffer into one store (merged-mode dense accumulators lower
    /// to slot-ascending sparse lists, exactly as the WAL records them).
    pub fn drain_ops(&mut self) -> (Vec<DrainedTileOps>, FlushReport) {
        let (entries, report) = self.drain_sorted();
        (
            entries
                .into_iter()
                .map(|(tile, payload)| (tile, payload.into_ops()))
                .collect(),
            report,
        )
    }

    /// Group-commit flush: one read-modify-write per dirty tile, in
    /// ascending block order, then a single pool flush.
    pub fn flush_into<M: TilingMap, S: BlockStore>(
        &mut self,
        cs: &mut CoeffStore<M, S>,
    ) -> FlushReport {
        let mut sw = Stopwatch::start();
        let (entries, report) = self.drain_sorted();
        if entries.is_empty() {
            // Nothing drained: no tile writes, no durability flush, no
            // flush metrics — a no-op commit must not charge a flush.
            return report;
        }
        let stats = cs.stats().clone();
        let deltas_per_tile = ss_obs::global().histogram("maintain.deltas_per_tile");
        for (tile, payload) in &entries {
            deltas_per_tile.record(payload.ops());
            stats.add_coeff_writes(payload.ops());
            cs.pool().with_block(*tile, true, |blk| payload.apply(blk));
        }
        cs.flush();
        record_flush_metrics(&report, sw.lap_ns());
        report
    }

    /// Parallel group-commit flush over a sharded store: the sorted dirty
    /// tiles are partitioned into contiguous ranges, one range per worker.
    /// Every tile is applied by exactly one worker (one shard lock, one
    /// read-modify-write), so the result is bit-identical to
    /// [`flush_into`](DeltaBuffer::flush_into) for any `workers >= 1`.
    pub fn flush_into_shared<M: TilingMap, S: BlockStore + Send + Sync>(
        &mut self,
        cs: &SharedCoeffStore<M, S>,
        workers: usize,
    ) -> FlushReport {
        let workers = workers.max(1);
        let mut sw = Stopwatch::start();
        let (entries, report) = self.drain_sorted();
        if entries.is_empty() {
            return report;
        }
        let deltas_per_tile = ss_obs::global().histogram("maintain.deltas_per_tile");
        for (_, payload) in &entries {
            deltas_per_tile.record(payload.ops());
        }
        let total = entries.len();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let lo = total * w / workers;
                let hi = total * (w + 1) / workers;
                if lo == hi {
                    continue;
                }
                let range = &entries[lo..hi];
                scope.spawn(move || {
                    for (tile, payload) in range {
                        // Coefficient-write accounting lives inside the
                        // store calls, matching `flush_into`'s per-tile
                        // `add_coeff_writes` exactly (see the parity test).
                        match payload {
                            TileApply::Sparse(ops) => cs.apply_tile(*tile, ops),
                            TileApply::Dense { acc, touched } => {
                                cs.apply_tile_dense(*tile, acc, *touched)
                            }
                        }
                    }
                });
            }
        });
        cs.flush();
        record_flush_metrics(&report, sw.lap_ns());
        report
    }
}

/// Publishes one flush's outcome to the global metrics registry.
fn record_flush_metrics(report: &FlushReport, flush_ns: u64) {
    let g = ss_obs::global();
    g.counter("maintain.flushes").inc();
    g.counter("maintain.boxes_buffered").add(report.boxes);
    g.counter("maintain.deltas_buffered").add(report.deltas);
    g.counter("maintain.tiles_written")
        .add(report.tiles_written);
    g.counter("maintain.tile_touches").add(report.tile_touches);
    g.gauge("maintain.tiles_dirty").set(report.tiles_written);
    g.gauge("maintain.coalescing_ratio_x1000")
        .set((report.coalescing_ratio() * 1000.0) as u64);
    g.histogram("maintain.flush_ns").record(flush_ns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_core::StandardTiling;
    use ss_storage::{mem_shared_store, wstore::mem_store, IoStats};

    fn map() -> StandardTiling {
        StandardTiling::cube(2, 4, 2)
    }

    #[test]
    fn exact_flush_replays_in_arrival_order() {
        let m = map();
        let mut cs = mem_store(m.clone(), 8, IoStats::default());
        let mut buf = DeltaBuffer::for_map(&m, FlushMode::Exact);
        // Deltas whose sum depends on association order.
        let vals = [1e16, 1.0, -1e16, 1.0];
        buf.begin_box();
        for &v in &vals {
            buf.add(3, 5, v);
        }
        let report = buf.flush_into(&mut cs);
        assert_eq!(report.tiles_written, 1);
        assert_eq!(report.deltas, 4);
        let mut expect = 0.0f64;
        for &v in &vals {
            expect += v;
        }
        assert_eq!(cs.read_at(3, 5).to_bits(), expect.to_bits());
        assert!(buf.is_empty());
    }

    #[test]
    fn merged_flush_sums_before_applying() {
        let m = map();
        let mut cs = mem_store(m.clone(), 8, IoStats::default());
        let mut buf = DeltaBuffer::for_map(&m, FlushMode::Merged);
        buf.begin_box();
        buf.add(0, 1, 2.0);
        buf.add(0, 1, 3.0);
        buf.add(0, 2, -1.0);
        let report = buf.flush_into(&mut cs);
        assert_eq!(report.tiles_written, 1);
        assert_eq!(cs.read_at(0, 1), 5.0);
        assert_eq!(cs.read_at(0, 2), -1.0);
        // Merged apply charges one coefficient write per touched slot.
        assert_eq!(cs.stats().snapshot().coeff_writes, 2);
    }

    #[test]
    fn one_block_write_per_dirty_tile() {
        let m = map();
        let stats = IoStats::default();
        // Pool large enough that only the final flush writes blocks.
        let mut cs = mem_store(m.clone(), m.num_tiles(), stats.clone());
        let mut buf = DeltaBuffer::for_map(&m, FlushMode::Exact);
        for b in 0..10 {
            buf.begin_box();
            buf.add(0, 0, b as f64); // every box touches tile 0
            buf.add(1 + b % 3, 0, 1.0);
        }
        let report = buf.flush_into(&mut cs);
        assert_eq!(report.tiles_written, 4); // tiles 0,1,2,3
        assert_eq!(report.tile_touches, 20); // 10 boxes × 2 tiles each
        assert_eq!(report.coalescing_ratio(), 5.0);
        assert_eq!(stats.snapshot().block_writes, 4);
    }

    #[test]
    fn parallel_flush_is_bit_identical_for_any_worker_count() {
        let m = map();
        let mut serial = mem_store(m.clone(), 8, IoStats::default());
        let mut buf = DeltaBuffer::for_map(&m, FlushMode::Exact);
        let deltas: Vec<(usize, usize, f64)> = (0..200)
            .map(|i| ((i * 7) % m.num_tiles(), (i * 5) % 16, 0.1 + i as f64 * 1e-3))
            .collect();
        for chunk in deltas.chunks(10) {
            buf.begin_box();
            for &(t, s, v) in chunk {
                buf.add(t, s, v);
            }
        }
        buf.flush_into(&mut serial);
        for workers in [1usize, 2, 3, 8, 16, 64] {
            let shared = mem_shared_store(m.clone(), 8, 4, IoStats::default());
            let mut buf = DeltaBuffer::for_map(&m, FlushMode::Exact);
            for chunk in deltas.chunks(10) {
                buf.begin_box();
                for &(t, s, v) in chunk {
                    buf.add(t, s, v);
                }
            }
            let report = buf.flush_into_shared(&shared, workers);
            assert_eq!(report.deltas, 200);
            let (map_back, store) = shared.into_parts();
            let mut check = CoeffStore::new(map_back, store, 8, IoStats::default());
            for tile in 0..m.num_tiles() {
                for slot in 0..16 {
                    assert_eq!(
                        serial.read_at(tile, slot).to_bits(),
                        check.read_at(tile, slot).to_bits(),
                        "workers={workers} tile={tile} slot={slot}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_flush_applies_all_tiles_when_workers_exceed_dirty_count() {
        let m = map();
        // Only 3 dirty tiles, far fewer than the worker counts below.
        let deltas: [(usize, usize, f64); 3] = [(0, 1, 1.0), (2, 5, 2.0), (5, 9, 3.0)];
        let mut serial = mem_store(m.clone(), 8, IoStats::default());
        let mut buf = DeltaBuffer::for_map(&m, FlushMode::Exact);
        buf.begin_box();
        for &(t, s, v) in &deltas {
            buf.add(t, s, v);
        }
        buf.flush_into(&mut serial);
        for workers in [4usize, 8, 16] {
            let shared = mem_shared_store(m.clone(), 8, 4, IoStats::default());
            let mut buf = DeltaBuffer::for_map(&m, FlushMode::Exact);
            buf.begin_box();
            for &(t, s, v) in &deltas {
                buf.add(t, s, v);
            }
            let report = buf.flush_into_shared(&shared, workers);
            assert_eq!(report.tiles_written, 3);
            let (map_back, store) = shared.into_parts();
            let mut check = CoeffStore::new(map_back, store, 8, IoStats::default());
            for &(t, s, v) in &deltas {
                assert_eq!(
                    check.read_at(t, s).to_bits(),
                    v.to_bits(),
                    "workers={workers} tile={t} slot={s} lost its delta"
                );
                assert_eq!(
                    serial.read_at(t, s).to_bits(),
                    check.read_at(t, s).to_bits()
                );
            }
        }
    }

    #[test]
    fn empty_flush_is_a_noop() {
        let m = map();
        let stats = IoStats::default();
        let mut cs = mem_store(m.clone(), 8, stats.clone());
        let mut buf = DeltaBuffer::for_map(&m, FlushMode::Exact);
        let flushes_before = ss_obs::global().counter("maintain.flushes").get();
        let report = buf.flush_into(&mut cs);
        assert_eq!(report, FlushReport::default());
        assert_eq!(report.coalescing_ratio(), 1.0);
        // An empty drain must not charge a durability flush or emit flush
        // metrics: no block writes, `maintain.flushes` unchanged.
        assert_eq!(
            ss_obs::global().counter("maintain.flushes").get(),
            flushes_before
        );
        assert_eq!(stats.snapshot().block_writes, 0);
        // Same for the shared path.
        let shared = mem_shared_store(m.clone(), 8, 4, IoStats::default());
        let report = buf.flush_into_shared(&shared, 4);
        assert_eq!(report, FlushReport::default());
        assert_eq!(
            ss_obs::global().counter("maintain.flushes").get(),
            flushes_before
        );
    }

    #[test]
    fn implicit_first_box_counts_once() {
        let m = map();
        let mut buf = DeltaBuffer::for_map(&m, FlushMode::Exact);
        buf.add(0, 0, 1.0); // no begin_box
        let mut cs = mem_store(m, 8, IoStats::default());
        let report = buf.flush_into(&mut cs);
        assert_eq!(report.boxes, 1);
    }

    #[test]
    fn implicit_box_followed_by_explicit_boxes_counts_both() {
        // Regression: deltas before the first begin_box are one implicit
        // operation; tile_touches counted it but `boxes` did not, which
        // inflated the coalescing ratio.
        let m = map();
        let mut buf = DeltaBuffer::for_map(&m, FlushMode::Exact);
        buf.add(0, 0, 1.0); // implicit first operation
        buf.begin_box();
        buf.add(0, 1, 2.0); // explicit second operation, same tile
        let mut cs = mem_store(m, 8, IoStats::default());
        let report = buf.flush_into(&mut cs);
        assert_eq!(report.boxes, 2);
        assert_eq!(report.tile_touches, 2);
        assert_eq!(report.tiles_written, 1);
        assert_eq!(report.coalescing_ratio(), 2.0);
    }

    #[test]
    fn merged_tiles_that_fully_cancel_are_not_written() {
        // Regression: +x and −x boxes landing on the same tile cancel to
        // an all-zero accumulator; the drain used to count that tile in
        // `tiles_written` and still issue a dirtying read-modify-write.
        let m = map();
        let stats = IoStats::default();
        let mut cs = mem_store(m.clone(), m.num_tiles(), stats.clone());
        let mut buf = DeltaBuffer::for_map(&m, FlushMode::Merged);
        buf.begin_box();
        buf.add(2, 4, 7.5); // +x box
        buf.add(2, 5, 1.0);
        buf.begin_box();
        buf.add(2, 4, -7.5); // −x box: cancels slot 4 and 5 on tile 2
        buf.add(2, 5, -1.0);
        buf.begin_box();
        buf.add(5, 0, 3.0); // a surviving tile, so the flush is not empty
        let report = buf.flush_into(&mut cs);
        assert_eq!(report.tiles_written, 1, "cancelled tile must not count");
        assert_eq!(report.tile_touches, 3, "touches still reflect arrivals");
        assert_eq!(stats.snapshot().block_writes, 1, "tile 2 must stay clean");
        assert_eq!(stats.snapshot().coeff_writes, 1);
        assert_eq!(cs.read_at(5, 0), 3.0);
        assert_eq!(cs.read_at(2, 4), 0.0);

        // Same cancellation through the sharded path.
        let shared_stats = IoStats::default();
        let shared = mem_shared_store(m.clone(), 8, 4, shared_stats.clone());
        let mut buf = DeltaBuffer::for_map(&m, FlushMode::Merged);
        buf.begin_box();
        buf.add(2, 4, 7.5);
        buf.begin_box();
        buf.add(2, 4, -7.5);
        buf.begin_box();
        buf.add(5, 0, 3.0);
        let report = buf.flush_into_shared(&shared, 4);
        assert_eq!(report.tiles_written, 1);
        assert_eq!(shared_stats.snapshot().block_writes, 1);
        assert_eq!(shared_stats.snapshot().coeff_writes, 1);
    }

    #[test]
    fn serial_and_sharded_flush_record_identical_coeff_writes() {
        // Regression: `flush_into` charged `add_coeff_writes` per tile in
        // the flush loop while `flush_into_shared` relied on the store's
        // apply hooks — the two paths must account identically, in both
        // flush modes.
        for mode in [FlushMode::Exact, FlushMode::Merged] {
            let m = map();
            let deltas: Vec<(usize, usize, f64)> = (0..60)
                .map(|i| ((i * 3) % m.num_tiles(), (i * 7) % 16, 0.25 + i as f64))
                .collect();
            let serial_stats = IoStats::default();
            let mut cs = mem_store(m.clone(), 8, serial_stats.clone());
            let mut buf = DeltaBuffer::for_map(&m, mode);
            for chunk in deltas.chunks(6) {
                buf.begin_box();
                for &(t, s, v) in chunk {
                    buf.add(t, s, v);
                }
            }
            let serial_report = buf.flush_into(&mut cs);
            let shared_stats = IoStats::default();
            let shared = mem_shared_store(m.clone(), 8, 4, shared_stats.clone());
            let mut buf = DeltaBuffer::for_map(&m, mode);
            for chunk in deltas.chunks(6) {
                buf.begin_box();
                for &(t, s, v) in chunk {
                    buf.add(t, s, v);
                }
            }
            let shared_report = buf.flush_into_shared(&shared, 3);
            assert_eq!(serial_report, shared_report, "mode {mode:?}");
            assert_eq!(
                serial_stats.snapshot().coeff_writes,
                shared_stats.snapshot().coeff_writes,
                "mode {mode:?}: coeff-write accounting diverged"
            );
        }
    }

    #[test]
    fn merged_dense_apply_matches_sparse_replay_bitwise() {
        // The vectorised dense pass must produce the same stored bits as
        // lowering the accumulator to a sparse op list would have.
        let m = map();
        let mut dense_cs = mem_store(m.clone(), 8, IoStats::default());
        let mut buf = DeltaBuffer::for_map(&m, FlushMode::Merged);
        buf.begin_box();
        for i in 0..64usize {
            buf.add(i % m.num_tiles(), (i * 11) % 16, (i as f64 - 31.5) * 0.125);
        }
        buf.flush_into(&mut dense_cs);
        let mut sparse_cs = mem_store(m.clone(), 8, IoStats::default());
        let mut buf = DeltaBuffer::for_map(&m, FlushMode::Merged);
        buf.begin_box();
        for i in 0..64usize {
            buf.add(i % m.num_tiles(), (i * 11) % 16, (i as f64 - 31.5) * 0.125);
        }
        let (entries, _) = buf.drain_sorted();
        for (tile, payload) in entries {
            for (slot, delta) in payload.into_ops() {
                sparse_cs
                    .pool()
                    .with_block(tile, true, |blk| blk[slot] += delta);
            }
        }
        for tile in 0..m.num_tiles() {
            for slot in 0..16 {
                assert_eq!(
                    dense_cs.read_at(tile, slot).to_bits(),
                    sparse_cs.read_at(tile, slot).to_bits()
                );
            }
        }
    }

    #[test]
    fn flush_mode_parse_is_case_insensitive() {
        assert_eq!(FlushMode::parse("exact"), Some(FlushMode::Exact));
        assert_eq!(FlushMode::parse("Exact"), Some(FlushMode::Exact));
        assert_eq!(FlushMode::parse("MERGED"), Some(FlushMode::Merged));
        assert_eq!(FlushMode::parse("bogus"), None);
    }
}
