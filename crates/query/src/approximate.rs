//! Approximate and progressive query answering from wavelet synopses —
//! the OLAP use-case the paper's introduction motivates (approximate,
//! progressive, or fast exact answers to range aggregates).
//!
//! A [`StoredSynopsis`] keeps the K standard-form coefficients of largest
//! orthonormal magnitude (plus the overall average) as a sparse map;
//! queries evaluate the usual contribution lists against it, touching only
//! retained coefficients. [`progressive_range_sum`] answers from an exact
//! store coarse-to-fine, yielding a refining estimate after every
//! decomposition level — usable as-is for online aggregation.

use ss_core::reconstruct;
use ss_storage::CoeffRead;
use std::collections::HashMap;

/// A sparse K-term synopsis of a standard-form transform.
#[derive(Clone, Debug)]
pub struct StoredSynopsis {
    n: Vec<u32>,
    coeffs: HashMap<Vec<usize>, f64>,
    retained: usize,
}

impl StoredSynopsis {
    /// Builds a synopsis keeping the `k` largest-magnitude coefficients of
    /// the transform held in `cs` (the overall average is always kept and
    /// does not count against `k`).
    pub fn build<C: CoeffRead>(cs: &mut C, n: &[u32], k: usize) -> Self {
        let dims: Vec<usize> = n.iter().map(|&nt| 1usize << nt).collect();
        let shape = ss_array::Shape::new(&dims);
        let mut ranked: Vec<(f64, Vec<usize>, f64)> = Vec::new();
        let origin = vec![0usize; n.len()];
        let mut average = 0.0;
        for idx in ss_array::MultiIndexIter::new(&dims) {
            let v = cs.read(&idx);
            if idx == origin {
                average = v;
                continue;
            }
            if v != 0.0 {
                let mag = v.abs() * ss_core::standard::orthonormal_scale(&shape, &idx);
                ranked.push((mag, idx, v));
            }
        }
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
        ranked.truncate(k);
        let mut coeffs: HashMap<Vec<usize>, f64> =
            ranked.into_iter().map(|(_, idx, v)| (idx, v)).collect();
        let retained = coeffs.len();
        coeffs.insert(origin, average);
        StoredSynopsis {
            n: n.to_vec(),
            coeffs,
            retained,
        }
    }

    /// Number of retained detail coefficients (≤ the requested `k`).
    pub fn retained(&self) -> usize {
        self.retained
    }

    /// Per-axis domain levels.
    pub fn levels(&self) -> &[u32] {
        &self.n
    }

    /// Coefficient lookup (0 for dropped coefficients).
    #[inline]
    fn get(&self, idx: &[usize]) -> f64 {
        self.coeffs.get(idx).copied().unwrap_or(0.0)
    }

    /// Serialises the synopsis to a compact little-endian byte format
    /// (`SSYN` magic, version, per-axis levels, then
    /// `(index tuple, value)` records) — small enough to ship to a client
    /// that answers approximate queries locally.
    pub fn to_bytes(&self) -> Vec<u8> {
        let d = self.n.len();
        let mut out = Vec::with_capacity(16 + self.coeffs.len() * (d + 1) * 8);
        out.extend_from_slice(b"SSYN");
        out.push(1); // version
        out.push(d as u8);
        for &n in &self.n {
            out.push(n as u8);
        }
        out.extend_from_slice(&(self.coeffs.len() as u64).to_le_bytes());
        // Deterministic order for byte-identical round trips.
        let mut entries: Vec<(&Vec<usize>, &f64)> = self.coeffs.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (idx, &v) in entries {
            for &i in idx.iter() {
                out.extend_from_slice(&(i as u64).to_le_bytes());
            }
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Inverse of [`StoredSynopsis::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a message for truncated input, wrong magic/version, or
    /// out-of-range coefficient indices.
    pub fn from_bytes(bytes: &[u8]) -> Result<StoredSynopsis, String> {
        let take = |bytes: &[u8], at: &mut usize, n: usize| -> Result<Vec<u8>, String> {
            if *at + n > bytes.len() {
                return Err("truncated synopsis".into());
            }
            let out = bytes[*at..*at + n].to_vec();
            *at += n;
            Ok(out)
        };
        let mut at = 0usize;
        if take(bytes, &mut at, 4)? != b"SSYN" {
            return Err("not a synopsis (bad magic)".into());
        }
        let version = take(bytes, &mut at, 1)?[0];
        if version != 1 {
            return Err(format!("unsupported synopsis version {version}"));
        }
        let d = take(bytes, &mut at, 1)?[0] as usize;
        if d == 0 {
            return Err("zero-dimensional synopsis".into());
        }
        let mut n = Vec::with_capacity(d);
        for _ in 0..d {
            n.push(take(bytes, &mut at, 1)?[0] as u32);
        }
        let count =
            u64::from_le_bytes(take(bytes, &mut at, 8)?.try_into().expect("8 bytes")) as usize;
        let mut coeffs = HashMap::with_capacity(count);
        let mut retained = 0usize;
        let origin = vec![0usize; d];
        for _ in 0..count {
            let mut idx = Vec::with_capacity(d);
            for t in 0..d {
                let i = u64::from_le_bytes(take(bytes, &mut at, 8)?.try_into().expect("8 bytes"))
                    as usize;
                if i >= (1usize << n[t]) {
                    return Err(format!("coefficient index {i} out of range on axis {t}"));
                }
                idx.push(i);
            }
            let v = f64::from_le_bytes(take(bytes, &mut at, 8)?.try_into().expect("8 bytes"));
            if idx != origin {
                retained += 1;
            }
            coeffs.insert(idx, v);
        }
        if at != bytes.len() {
            return Err("trailing bytes after synopsis".into());
        }
        Ok(StoredSynopsis {
            n,
            coeffs,
            retained,
        })
    }

    /// Approximate point query (Lemma 1 against the sparse map).
    pub fn point(&self, pos: &[usize]) -> f64 {
        reconstruct::standard_point_contributions(&self.n, pos)
            .iter()
            .map(|(idx, w)| w * self.get(idx))
            .sum()
    }

    /// Approximate inclusive range sum (Lemma 2 against the sparse map).
    pub fn range_sum(&self, lo: &[usize], hi: &[usize]) -> f64 {
        reconstruct::standard_range_sum_contributions(&self.n, lo, hi)
            .iter()
            .map(|(idx, w)| w * self.get(idx))
            .sum()
    }

    /// Fraction of the data's total energy captured by the synopsis,
    /// relative to the full transform in `cs` (1.0 = lossless).
    pub fn energy_ratio<C: CoeffRead>(&self, cs: &mut C) -> f64 {
        let dims: Vec<usize> = self.n.iter().map(|&nt| 1usize << nt).collect();
        let shape = ss_array::Shape::new(&dims);
        let mut kept = 0.0;
        let mut total = 0.0;
        for idx in ss_array::MultiIndexIter::new(&dims) {
            let scale = ss_core::standard::orthonormal_scale(&shape, &idx);
            let full = (cs.read(&idx) * scale).powi(2);
            total += full;
            if self.coeffs.contains_key(&idx) {
                kept += full;
            }
        }
        if total == 0.0 {
            1.0
        } else {
            kept / total
        }
    }
}

/// Progressive (online-aggregation style) range sum: evaluates the Lemma 2
/// contribution list **coarse-to-fine**, returning the running estimate
/// after each batch of levels. The last element is the exact answer; early
/// elements are usable approximations after a handful of coefficient reads.
pub fn progressive_range_sum<C: CoeffRead>(
    cs: &mut C,
    n: &[u32],
    lo: &[usize],
    hi: &[usize],
) -> Vec<f64> {
    let mut contribs = reconstruct::standard_range_sum_contributions(n, lo, hi);
    // Coarse-to-fine: order by the finest level participating in the tuple
    // (larger minimum level = coarser = first).
    let fineness = |idx: &[usize]| -> u32 {
        idx.iter()
            .zip(n)
            .map(|(&i, &nt)| match ss_core::Layout1d::new(nt).coeff_at(i) {
                ss_core::Coeff1d::Scaling => nt,
                ss_core::Coeff1d::Detail { level, .. } => level,
            })
            .min()
            .unwrap_or(0)
    };
    contribs.sort_by_key(|(idx, _)| std::cmp::Reverse(fineness(idx)));
    let mut estimates = Vec::new();
    let mut acc = 0.0;
    let mut current_band = None;
    for (idx, w) in &contribs {
        let band = fineness(idx);
        if let Some(cb) = current_band {
            if band != cb {
                estimates.push(acc);
            }
        }
        current_band = Some(band);
        acc += w * cs.read(idx);
    }
    estimates.push(acc);
    estimates
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::{MultiIndexIter, NdArray, Shape};
    use ss_core::tiling::StandardTiling;
    use ss_storage::{wstore::mem_store, CoeffStore, IoStats, MemBlockStore};

    fn build_store(a: &NdArray<f64>, n: &[u32]) -> CoeffStore<StandardTiling, MemBlockStore> {
        let t = ss_core::standard::forward_to(a);
        let mut cs = mem_store(
            StandardTiling::new(n, &vec![2; n.len()]),
            1 << 12,
            IoStats::new(),
        );
        for idx in MultiIndexIter::new(a.shape().dims()) {
            cs.write(&idx, t.get(&idx));
        }
        cs
    }

    fn smooth(side: usize) -> NdArray<f64> {
        NdArray::from_fn(Shape::cube(2, side), |idx| {
            (idx[0] as f64 / 5.0).sin() * 20.0 + (idx[1] as f64 / 7.0).cos() * 15.0
        })
    }

    #[test]
    fn full_synopsis_is_exact() {
        let a = smooth(16);
        let mut cs = build_store(&a, &[4, 4]);
        let syn = StoredSynopsis::build(&mut cs, &[4, 4], 16 * 16);
        for idx in MultiIndexIter::new(&[16, 16]) {
            assert!((syn.point(&idx) - a.get(&idx)).abs() < 1e-9, "{idx:?}");
        }
        assert!((syn.energy_ratio(&mut cs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_improves_with_k() {
        let a = smooth(32);
        let mut cs = build_store(&a, &[5, 5]);
        let mut prev_err = f64::INFINITY;
        for k in [4usize, 16, 64, 256] {
            let syn = StoredSynopsis::build(&mut cs, &[5, 5], k);
            let mut err = 0.0;
            for idx in MultiIndexIter::new(&[32, 32]) {
                err += (syn.point(&idx) - a.get(&idx)).powi(2);
            }
            assert!(err <= prev_err + 1e-9, "k={k}: {err} > {prev_err}");
            prev_err = err;
        }
        // A smooth field compresses well: 64 of 1024 terms should capture
        // most of the energy.
        let syn = StoredSynopsis::build(&mut cs, &[5, 5], 64);
        assert!(syn.energy_ratio(&mut cs) > 0.95);
    }

    #[test]
    fn range_sums_on_synopsis_are_close() {
        let a = smooth(32);
        let mut cs = build_store(&a, &[5, 5]);
        let syn = StoredSynopsis::build(&mut cs, &[5, 5], 128);
        let exact = a.region_sum(&[4, 4], &[27, 19]);
        let approx = syn.range_sum(&[4, 4], &[27, 19]);
        let rel = (approx - exact).abs() / exact.abs().max(1.0);
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn progressive_converges_to_exact() {
        let a = smooth(32);
        let mut cs = build_store(&a, &[5, 5]);
        let exact = a.region_sum(&[3, 5], &[22, 30]);
        let estimates = progressive_range_sum(&mut cs, &[5, 5], &[3, 5], &[22, 30]);
        assert!(!estimates.is_empty());
        let last = *estimates.last().unwrap();
        assert!((last - exact).abs() < 1e-6);
        // Refinement: the final estimate must be at least as good as the
        // first.
        let first_err = (estimates[0] - exact).abs();
        let last_err = (last - exact).abs();
        assert!(last_err <= first_err + 1e-9);
    }

    #[test]
    fn byte_roundtrip_is_lossless_and_deterministic() {
        let a = smooth(16);
        let mut cs = build_store(&a, &[4, 4]);
        let syn = StoredSynopsis::build(&mut cs, &[4, 4], 40);
        let bytes = syn.to_bytes();
        let back = StoredSynopsis::from_bytes(&bytes).unwrap();
        assert_eq!(back.retained(), syn.retained());
        assert_eq!(back.levels(), syn.levels());
        for idx in MultiIndexIter::new(&[16, 16]) {
            assert!((back.point(&idx) - syn.point(&idx)).abs() < 1e-12);
        }
        assert_eq!(back.to_bytes(), bytes, "round trip must be byte-identical");
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(StoredSynopsis::from_bytes(b"nope").is_err());
        assert!(StoredSynopsis::from_bytes(b"SSYN").is_err());
        let a = smooth(16);
        let mut cs = build_store(&a, &[4, 4]);
        let mut bytes = StoredSynopsis::build(&mut cs, &[4, 4], 8).to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(StoredSynopsis::from_bytes(&bytes).is_err());
        bytes.clear();
        bytes.extend_from_slice(b"SSYN");
        bytes.push(9); // bad version
        assert!(StoredSynopsis::from_bytes(&bytes).is_err());
    }

    #[test]
    fn synopsis_of_sparse_spikes_reconstructs_spikes() {
        // A few large spikes on a zero background. Best-K under L² keeps
        // the *fine* coefficients around each spike (largest orthonormal
        // magnitude), so point values reproduce well — while aligned range
        // sums, which depend only on the small coarse coefficients, do not.
        // Both facts are properties of L²-optimal synopses, not bugs.
        let mut a = NdArray::<f64>::zeros(Shape::cube(2, 16));
        a.set(&[3, 3], 100.0);
        a.set(&[12, 9], -80.0);
        let mut cs = build_store(&a, &[4, 4]);
        let syn = StoredSynopsis::build(&mut cs, &[4, 4], 24);
        // Point queries at and away from the spikes are accurate.
        assert!((syn.point(&[3, 3]) - 100.0).abs() < 25.0);
        assert!((syn.point(&[12, 9]) + 80.0).abs() < 25.0);
        assert!(syn.point(&[8, 2]).abs() < 10.0);
        // Full-domain sum uses only the (always retained) average: exact.
        let exact = a.total();
        let approx = syn.range_sum(&[0, 0], &[15, 15]);
        assert!((approx - exact).abs() < 1e-9);
    }
}
