//! Queries over tiled wavelet stores, with exact I/O accounting.
//!
//! Everything the paper promises about query cost hinges on the Section 3
//! block allocation: root paths cluster into `≈ log_B N` tiles, and the
//! redundant per-tile scaling coefficients let a point query finish inside a
//! *single* tile. This crate implements:
//!
//! * [`point`] — point queries (Lemma 1) for the standard and non-standard
//!   forms, both the generic contribution-list plan and the single-tile
//!   *fast path* that exploits materialised scaling slots,
//! * [`range`] — range-sum queries (Lemma 2) for the standard form,
//! * [`recon`] — partial reconstruction of arbitrary boxes (Section 5.4 /
//!   Result 6) with the two baselines the paper discusses (full inverse
//!   then slice; point-by-point),
//! * [`scalings`] — materialisation of the redundant scaling slots that
//!   tiles reserve (slot 0 per subtree, and the mixed cross-product slots of
//!   the standard form),
//! * [`approximate`] — K-term synopses of stored transforms and progressive
//!   (online-aggregation style) range sums,
//! * [`batch`] — tile-major execution of query batches (every needed tile
//!   read once across the whole batch).

// Axis-indexed loops over several parallel per-axis arrays are the clearest
// idiom for the index arithmetic in this workspace; iterator rewrites hurt
// readability without changing the generated code.
#![allow(clippy::needless_range_loop)]

pub mod approximate;
pub mod batch;
pub mod point;
pub mod range;
pub mod recon;
pub mod scalings;

pub use approximate::{progressive_range_sum, StoredSynopsis};
pub use batch::{batch_points, batch_range_sums, execute_plans, execute_plans_tiled, PlanTiles};
pub use point::{point_nonstandard, point_nonstandard_fast, point_standard, point_standard_fast};
pub use range::{range_sum_nonstandard, range_sum_standard, range_sum_standard_fast};
pub use recon::{
    reconstruct_box_standard, reconstruct_pointwise_standard, reconstruct_range_nonstandard,
};
pub use scalings::{materialize_nonstandard_scalings, materialize_standard_scalings};
