//! Materialisation of the redundant scaling slots reserved by the tiling.
//!
//! A subtree tile stores `B − 1` detail coefficients plus one spare slot;
//! the paper fills it with the scaling coefficient of the subtree root,
//! "useful for query answering, as they can dramatically reduce query
//! costs" (Section 3). For the standard multidimensional form the spare
//! slots are the whole cross-product frontier: any slot tuple with at least
//! one axis in its scaling position holds a *mixed* coefficient — detail
//! along some axes, partially reconstructed average along the others.
//!
//! These routines derive every redundant slot from the already-stored
//! transform coefficients (inverse-SPLIT contribution lists), so they can
//! run as a post-pass after any transform or maintenance operation.

use ss_core::reconstruct::{
    block_average_contributions_1d, nonstandard_block_average_contributions,
};
use ss_core::tiling::{NonStandardTiling, StandardTiling};
use ss_core::TilingMap;
use ss_storage::{BlockStore, CoeffStore};

/// Fills every redundant slot of a standard-form tiled store.
///
/// For each tile and each slot tuple with `k ≥ 1` axes in scaling position,
/// the slot value is the cross product of per-axis sources: the in-place
/// detail index on detail axes, the inverse-SPLIT list of the tile-root
/// average on scaling axes. The all-coefficient slots already hold the
/// transform and are left untouched, as is the one *true* scaling slot of
/// the top tile (axis index 0).
pub fn materialize_standard_scalings<S: BlockStore>(
    cs: &mut CoeffStore<StandardTiling, S>,
    n: &[u32],
) {
    let d = cs.map().ndim();
    assert_eq!(n.len(), d);
    let axes = cs.map().axes().to_vec();
    let tile_counts: Vec<usize> = axes.iter().map(|a| a.num_tiles()).collect();
    let slot_sides: Vec<usize> = axes.iter().map(|a| a.block_side()).collect();
    let tile_grid = ss_array::Shape::new(&tile_counts);
    let slot_grid = ss_array::Shape::new(&slot_sides);

    for tile_tuple in ss_array::MultiIndexIter::new(&tile_counts) {
        let tile = tile_grid.offset(&tile_tuple);
        // Per-axis geometry of this tile.
        let roots: Vec<(u32, usize)> = axes
            .iter()
            .zip(&tile_tuple)
            .map(|(a, &t)| a.tile_root(t))
            .collect();
        let heights: Vec<u32> = axes
            .iter()
            .zip(&tile_tuple)
            .map(|(a, &t)| a.tile_height(t))
            .collect();
        // Enumerate slots: per axis, slot 0 (scaling) or an in-band detail.
        let slot_domain: Vec<usize> = heights.iter().map(|&h| 1usize << h).collect();
        for slot_tuple in ss_array::MultiIndexIter::new(&slot_domain) {
            // Skip pure-coefficient slots (all axes detail) — they hold the
            // transform already.
            let has_scaling_axis = slot_tuple
                .iter()
                .zip(&roots)
                .enumerate()
                .any(|(t, (&s, &(j_top, _)))| s == 0 && (j_top != n[t]));
            let any_zero = slot_tuple.contains(&0);
            if !any_zero {
                continue;
            }
            if !has_scaling_axis {
                // Every zero slot is the true global average axis (top
                // tile): this is an actual coefficient; leave it.
                continue;
            }
            // Per-axis source lists over *global coefficient indices*.
            let per_axis: Vec<Vec<(usize, f64)>> = (0..d)
                .map(|t| {
                    let (j_top, k_top) = roots[t];
                    let s = slot_tuple[t];
                    if s == 0 {
                        if j_top == n[t] {
                            // True scaling axis: global index 0 of that axis.
                            vec![(0usize, 1.0)]
                        } else {
                            block_average_contributions_1d(n[t], j_top, k_top)
                        }
                    } else {
                        // Decode the in-tile detail slot back to the global
                        // index: slot = 2^ℓ + q at local depth ℓ.
                        let octave = usize::BITS - 1 - s.leading_zeros();
                        let local_depth = octave;
                        let q = s - (1usize << octave);
                        let level = j_top - local_depth;
                        let k = (k_top << local_depth) + q;
                        let idx = ss_core::Layout1d::new(n[t])
                            .index_of(ss_core::Coeff1d::Detail { level, k });
                        vec![(idx, 1.0)]
                    }
                })
                .collect();
            // Evaluate the cross product from stored coefficients.
            let counts: Vec<usize> = per_axis.iter().map(|v| v.len()).collect();
            let mut value = 0.0;
            let mut idx = vec![0usize; d];
            for choice in ss_array::MultiIndexIter::new(&counts) {
                let mut w = 1.0;
                for (t, &c) in choice.iter().enumerate() {
                    let (i, f) = per_axis[t][c];
                    idx[t] = i;
                    w *= f;
                }
                value += w * cs.read(&idx);
            }
            let slot = slot_grid.offset(&slot_tuple);
            cs.pool().write(tile, slot, value);
        }
    }
    cs.flush();
}

/// Fills slot 0 of every non-root tile of a non-standard-form store with
/// the scaling coefficient of the tile's quad-tree root node.
pub fn materialize_nonstandard_scalings<S: BlockStore>(
    cs: &mut CoeffStore<NonStandardTiling, S>,
    n: u32,
) {
    let tiles = cs.map().num_tiles();
    for tile in 0..tiles {
        let (j_top, node) = cs.map().tile_root(tile);
        if j_top == n {
            continue; // top tile: slot 0 is the true overall average
        }
        let contribs = nonstandard_block_average_contributions(n, j_top, &node);
        let value: f64 = contribs.iter().map(|(idx, w)| w * cs.read(idx)).sum();
        cs.pool().write(tile, 0, value);
    }
    cs.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::{MultiIndexIter, NdArray, Shape};
    use ss_storage::{wstore::mem_store, IoStats};

    #[test]
    fn nonstandard_slot0_holds_node_average() {
        let a = NdArray::from_fn(Shape::cube(2, 16), |idx| (idx[0] * 16 + idx[1]) as f64);
        let t = ss_core::nonstandard::forward_to(&a);
        let mut cs = mem_store(NonStandardTiling::new(2, 4, 2), 1024, IoStats::new());
        for idx in MultiIndexIter::new(&[16, 16]) {
            cs.write(&idx, t.get(&idx));
        }
        materialize_nonstandard_scalings(&mut cs, 4);
        // Tile rooted at level 2, node (1,2) covers rows 4..8, cols 8..12.
        for tile in 0..cs.map().num_tiles() {
            let (j, node) = cs.map().tile_root(tile);
            if j == 4 {
                continue;
            }
            let side = 1usize << j;
            let lo = [node[0] * side, node[1] * side];
            let hi = [lo[0] + side - 1, lo[1] + side - 1];
            let want = a.region_sum(&lo, &hi) / (side * side) as f64;
            let got = cs.read_at(tile, 0);
            assert!((got - want).abs() < 1e-9, "tile {tile} ({j}, {node:?})");
        }
    }

    #[test]
    fn standard_1d_slot0_holds_subtree_average() {
        let data: Vec<f64> = (0..64).map(|i| ((i * 5) % 13) as f64).collect();
        let t = ss_core::haar1d::forward_to_vec(&data);
        let mut cs = mem_store(StandardTiling::new(&[6], &[2]), 1024, IoStats::new());
        for i in 0..64usize {
            cs.write(&[i], t[i]);
        }
        materialize_standard_scalings(&mut cs, &[6]);
        let axis = cs.map().axes()[0].clone();
        for tile in 0..axis.num_tiles() {
            let (j, k) = axis.tile_root(tile);
            if j == 6 {
                continue;
            }
            let len = 1usize << j;
            let want: f64 = data[k * len..(k + 1) * len].iter().sum::<f64>() / len as f64;
            let got = cs.read_at(tile, 0);
            assert!((got - want).abs() < 1e-9, "tile {tile} root ({j},{k})");
        }
    }
}
