//! Partial reconstruction of boxes (Section 5.4, Result 6) and its two
//! baselines.
//!
//! Given the transform of the whole dataset, extracting a region admits
//! three strategies the paper weighs against each other:
//!
//! 1. **Full inverse, then slice** — reasonable only for huge regions
//!    ([`reconstruct_full_standard`]).
//! 2. **Point by point** — `O(region · Π(n_t + 1))` coefficient reads;
//!    preferable for tiny regions ([`reconstruct_pointwise_standard`]).
//! 3. **Inverse SHIFT-SPLIT** — assemble the region's own transform from
//!    `O((M + log(N/M))^d)` coefficients and invert it in memory
//!    ([`reconstruct_box_standard`], [`reconstruct_range_nonstandard`]).

use ss_array::{DyadicRange, MultiIndexIter, NdArray, Shape};
use ss_core::reconstruct;
use ss_storage::CoeffRead;

/// Reconstructs an arbitrary inclusive box `[lo, hi]` from a standard-form
/// store via inverse SHIFT-SPLIT: the box is decomposed into dyadic ranges,
/// each assembled and inverted independently (Result 6).
pub fn reconstruct_box_standard<C: CoeffRead>(
    cs: &mut C,
    n: &[u32],
    lo: &[usize],
    hi: &[usize],
) -> NdArray<f64> {
    let _span = ss_obs::global().span("query.reconstruct_std");
    let extents: Vec<usize> = lo.iter().zip(hi).map(|(&l, &h)| h - l + 1).collect();
    let mut out = NdArray::<f64>::zeros(Shape::new(&extents));
    for piece in ss_array::decompose_range(lo, hi) {
        let data = reconstruct_dyadic_standard(cs, n, &piece);
        let origin: Vec<usize> = piece
            .origin()
            .iter()
            .zip(lo)
            .map(|(&o, &l)| o - l)
            .collect();
        out.insert(&origin, &data);
    }
    out
}

/// Reconstructs a single dyadic range from a standard-form store.
pub fn reconstruct_dyadic_standard<C: CoeffRead>(
    cs: &mut C,
    n: &[u32],
    range: &DyadicRange,
) -> NdArray<f64> {
    reconstruct::standard_reconstruct_range(n, range, |idx| cs.read(idx))
}

/// Reconstructs a cubic dyadic range from a non-standard-form store.
pub fn reconstruct_range_nonstandard<C: CoeffRead>(
    cs: &mut C,
    n: u32,
    range: &DyadicRange,
) -> NdArray<f64> {
    let _span = ss_obs::global().span("query.reconstruct_ns");
    reconstruct::nonstandard_reconstruct_range(n, range, |idx| cs.read(idx))
}

/// Baseline 2: reconstructs `[lo, hi]` point by point through Lemma 1.
pub fn reconstruct_pointwise_standard<C: CoeffRead>(
    cs: &mut C,
    n: &[u32],
    lo: &[usize],
    hi: &[usize],
) -> NdArray<f64> {
    let extents: Vec<usize> = lo.iter().zip(hi).map(|(&l, &h)| h - l + 1).collect();
    let mut pos = vec![0usize; lo.len()];
    NdArray::from_fn(Shape::new(&extents), |rel| {
        for (t, &r) in rel.iter().enumerate() {
            pos[t] = lo[t] + r;
        }
        crate::point::point_standard(cs, n, &pos)
    })
}

/// Baseline 1: reads the entire transform, inverts it in memory, then
/// slices out `[lo, hi]`.
pub fn reconstruct_full_standard<C: CoeffRead>(
    cs: &mut C,
    n: &[u32],
    lo: &[usize],
    hi: &[usize],
) -> NdArray<f64> {
    let dims: Vec<usize> = n.iter().map(|&nt| 1usize << nt).collect();
    let mut full = NdArray::<f64>::zeros(Shape::new(&dims));
    for idx in MultiIndexIter::new(&dims) {
        let v = cs.read(&idx);
        full.set(&idx, v);
    }
    ss_core::standard::inverse(&mut full);
    let extents: Vec<usize> = lo.iter().zip(hi).map(|(&l, &h)| h - l + 1).collect();
    full.extract(lo, &extents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_core::tiling::{NonStandardTiling, StandardTiling};
    use ss_storage::{wstore::mem_store, CoeffStore, IoStats};

    fn build(
        a: &NdArray<f64>,
        n: &[u32],
        b: &[u32],
    ) -> CoeffStore<StandardTiling, ss_storage::MemBlockStore> {
        let t = ss_core::standard::forward_to(a);
        let mut cs = mem_store(StandardTiling::new(n, b), 4096, IoStats::new());
        for idx in MultiIndexIter::new(a.shape().dims()) {
            cs.write(&idx, t.get(&idx));
        }
        cs
    }

    fn sample(dims: &[usize]) -> NdArray<f64> {
        NdArray::from_fn(Shape::new(dims), |idx| {
            idx.iter().map(|&i| (i as f64 + 1.0).ln()).sum::<f64>() * 3.0
        })
    }

    #[test]
    fn box_reconstruction_matches_slice() {
        let a = sample(&[16, 16]);
        let mut cs = build(&a, &[4, 4], &[2, 2]);
        for (lo, hi) in [
            ([0usize, 0usize], [15usize, 15usize]),
            ([3, 1], [10, 14]),
            ([7, 7], [7, 7]),
            ([4, 8], [7, 15]),
        ] {
            let got = reconstruct_box_standard(&mut cs, &[4, 4], &lo, &hi);
            let extents: Vec<usize> = lo.iter().zip(&hi).map(|(&l, &h)| h - l + 1).collect();
            let want = a.extract(&lo, &extents);
            assert!(got.max_abs_diff(&want) < 1e-9, "[{lo:?},{hi:?}]");
        }
    }

    #[test]
    fn all_three_strategies_agree() {
        let a = sample(&[16, 8]);
        let mut cs = build(&a, &[4, 3], &[2, 1]);
        let (lo, hi) = ([2usize, 1usize], [9usize, 6usize]);
        let s1 = reconstruct_full_standard(&mut cs, &[4, 3], &lo, &hi);
        let s2 = reconstruct_pointwise_standard(&mut cs, &[4, 3], &lo, &hi);
        let s3 = reconstruct_box_standard(&mut cs, &[4, 3], &lo, &hi);
        assert!(s1.max_abs_diff(&s3) < 1e-9);
        assert!(s2.max_abs_diff(&s3) < 1e-9);
    }

    #[test]
    fn shift_split_reads_fewer_coeffs_than_pointwise_for_large_ranges() {
        let a = sample(&[64]);
        let mut cs = build(&a, &[6], &[2]);
        let stats = cs.stats().clone();
        stats.reset();
        let _ = reconstruct_box_standard(&mut cs, &[6], &[0], &[31]);
        let ss_reads = stats.snapshot().coeff_reads;
        stats.reset();
        let _ = reconstruct_pointwise_standard(&mut cs, &[6], &[0], &[31]);
        let pw_reads = stats.snapshot().coeff_reads;
        assert!(
            ss_reads < pw_reads,
            "shift-split {ss_reads} vs pointwise {pw_reads}"
        );
    }

    #[test]
    fn nonstandard_dyadic_reconstruction() {
        let a = sample(&[16, 16]);
        let t = ss_core::nonstandard::forward_to(&a);
        let mut cs = mem_store(NonStandardTiling::new(2, 4, 2), 1024, IoStats::new());
        for idx in MultiIndexIter::new(&[16, 16]) {
            cs.write(&idx, t.get(&idx));
        }
        let range = DyadicRange::cube(2, &[2, 1]);
        let got = reconstruct_range_nonstandard(&mut cs, 4, &range);
        let want = a.extract(&range.origin(), &range.extents());
        assert!(got.max_abs_diff(&want) < 1e-9);
    }
}
