//! Batched query execution with shared tile fetches.
//!
//! Workloads rarely ask one question: a dashboard refresh issues hundreds
//! of point and range queries at once. Because every query plan is a
//! contribution list over coefficients, a batch can be executed
//! *tile-major*: resolve all lists up front, group the coefficient reads by
//! tile, and stream each needed tile through memory exactly once. With a
//! cold cache this turns `Q · ceil(n/b)^d` block reads into
//! `|distinct tiles|` — the batching analogue of the paper's tiling
//! argument.

use ss_core::{reconstruct, TilingMap};
use ss_storage::CoeffRead;
use std::collections::HashMap;

/// Executes a batch of point queries, reading every needed tile once.
pub fn batch_points<C: CoeffRead>(cs: &mut C, n: &[u32], positions: &[Vec<usize>]) -> Vec<f64> {
    let _span = ss_obs::global().span("query.batch_points");
    let plans: Vec<Vec<(Vec<usize>, f64)>> = positions
        .iter()
        .map(|pos| reconstruct::standard_point_contributions(n, pos))
        .collect();
    execute_plans(cs, &plans)
}

/// Executes a batch of inclusive range-sum queries, reading every needed
/// tile once.
pub fn batch_range_sums<C: CoeffRead>(
    cs: &mut C,
    n: &[u32],
    ranges: &[(Vec<usize>, Vec<usize>)],
) -> Vec<f64> {
    let _span = ss_obs::global().span("query.batch_range_sums");
    let plans: Vec<Vec<(Vec<usize>, f64)>> = ranges
        .iter()
        .map(|(lo, hi)| reconstruct::standard_range_sum_contributions(n, lo, hi))
        .collect();
    execute_plans(cs, &plans)
}

/// One plan's answer plus its per-tile partial sums, in ascending tile
/// order — the decomposition a scatter-gather router merges exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanTiles {
    /// The plan's answer: the fold of `tiles` partials in order,
    /// starting from `0.0`.
    pub value: f64,
    /// `(tile, partial)` pairs for every tile the plan touched,
    /// ascending by tile ordinal.
    pub tiles: Vec<(usize, f64)>,
}

/// Tile-major evaluation of contribution-list plans: answer `i` is the
/// weighted sum of plan `i`'s coefficients, with every `(tile, slot)` read
/// exactly once across the whole batch, in ascending tile order.
///
/// Increments the `query.batch_distinct_tiles` counter by the number of
/// distinct tiles the batch touched — the quantity the tile-major claim is
/// about. The evaluation order (and hence the floating-point answer) is
/// deterministic: it depends only on the plans and the tiling map, never on
/// the store behind `cs`, so serial and concurrent executions agree bit for
/// bit.
pub fn execute_plans<C: CoeffRead>(cs: &mut C, plans: &[Vec<(Vec<usize>, f64)>]) -> Vec<f64> {
    execute_plans_tiled(cs, plans)
        .into_iter()
        .map(|r| r.value)
        .collect()
}

/// [`execute_plans`] with each answer's per-tile partial sums exposed.
///
/// The canonical accumulation order is **per-tile decomposed**: within a
/// tile, contributions fold left in ascending `(tile, slot)` key order
/// (and, per key, in plan insertion order); the answer is then the fold
/// of the per-tile partials in ascending tile order, starting from
/// `0.0`. Because f64 addition is not associative, this grouping is what
/// makes horizontal sharding *exact*: any partition of the tile space
/// into whole-tile ranges computes the same per-tile partials locally,
/// and a router that re-folds the partials in ascending tile order
/// replays the identical addition sequence — the merged answer equals
/// the single-store answer bit for bit (see `ss-serve`'s router and
/// DESIGN.md §16).
pub fn execute_plans_tiled<C: CoeffRead>(
    cs: &mut C,
    plans: &[Vec<(Vec<usize>, f64)>],
) -> Vec<PlanTiles> {
    // Inert unless the calling thread is inside a traced request; the
    // batch's tile-fetch events then nest under this span.
    let _trace_span = ss_obs::trace::scoped("query.execute");
    // (tile, slot) -> [(query, weight)], so each coefficient is read once
    // even when several queries share it.
    let mut wanted: HashMap<(usize, usize), Vec<(usize, f64)>> = HashMap::new();
    for (q, plan) in plans.iter().enumerate() {
        for (idx, w) in plan {
            let loc = cs.map().locate(idx);
            wanted
                .entry((loc.tile, loc.slot))
                .or_default()
                .push((q, *w));
        }
    }
    let mut keys: Vec<(usize, usize)> = wanted.keys().copied().collect();
    keys.sort_unstable();
    let mut distinct_tiles = 0u64;
    let mut results: Vec<PlanTiles> = plans
        .iter()
        .map(|_| PlanTiles {
            value: 0.0,
            tiles: Vec::new(),
        })
        .collect();
    // Keys are sorted, so each tile is one contiguous run.
    let mut i = 0;
    let mut acc: HashMap<usize, f64> = HashMap::new();
    let mut touched: Vec<usize> = Vec::new();
    while i < keys.len() {
        let tile = keys[i].0;
        distinct_tiles += 1;
        acc.clear();
        touched.clear();
        while i < keys.len() && keys[i].0 == tile {
            let v = cs.read_at(tile, keys[i].1);
            for &(q, w) in &wanted[&keys[i]] {
                match acc.entry(q) {
                    std::collections::hash_map::Entry::Occupied(mut e) => *e.get_mut() += w * v,
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(w * v);
                        touched.push(q);
                    }
                }
            }
            i += 1;
        }
        for &q in &touched {
            let partial = acc[&q];
            results[q].tiles.push((tile, partial));
            results[q].value += partial;
        }
    }
    ss_obs::global()
        .counter("query.batch_distinct_tiles")
        .add(distinct_tiles);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::{MultiIndexIter, NdArray, Shape};
    use ss_core::tiling::StandardTiling;
    use ss_storage::{wstore::mem_store, CoeffStore, IoStats};

    fn setup(
        side: usize,
        n: u32,
    ) -> (
        NdArray<f64>,
        CoeffStore<StandardTiling, ss_storage::MemBlockStore>,
        IoStats,
    ) {
        let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 31 + idx[1] * 7) % 23) as f64
        });
        let t = ss_core::standard::forward_to(&data);
        let stats = IoStats::new();
        let mut cs = mem_store(
            StandardTiling::new(&[n; 2], &[2; 2]),
            1 << 12,
            stats.clone(),
        );
        for idx in MultiIndexIter::new(&[side, side]) {
            cs.write(&idx, t.get(&idx));
        }
        cs.flush();
        (data, cs, stats)
    }

    #[test]
    fn batch_points_match_singles() {
        let (data, mut cs, _) = setup(64, 6);
        let positions: Vec<Vec<usize>> = (0..50)
            .map(|i| vec![(i * 13) % 64, (i * 29) % 64])
            .collect();
        let got = batch_points(&mut cs, &[6, 6], &positions);
        for (pos, g) in positions.iter().zip(&got) {
            assert!((g - data.get(pos)).abs() < 1e-9, "{pos:?}");
        }
    }

    #[test]
    fn batch_range_sums_match_naive() {
        let (data, mut cs, _) = setup(64, 6);
        let ranges: Vec<(Vec<usize>, Vec<usize>)> = (0..20)
            .map(|i| {
                let lo = vec![(i * 3) % 32, (i * 5) % 32];
                let hi = vec![lo[0] + 15, lo[1] + 20];
                (lo, hi)
            })
            .collect();
        let got = batch_range_sums(&mut cs, &[6, 6], &ranges);
        for ((lo, hi), g) in ranges.iter().zip(&got) {
            assert!(
                (g - data.region_sum(lo, hi)).abs() < 1e-6,
                "[{lo:?},{hi:?}]"
            );
        }
    }

    #[test]
    fn batching_reads_fewer_blocks_than_sequential_cold_queries() {
        let (_, mut cs, stats) = setup(64, 6);
        let positions: Vec<Vec<usize>> = (0..100)
            .map(|i| vec![(i * 7) % 64, (i * 11) % 64])
            .collect();
        // Sequential with a cold cache per query.
        let mut sequential_blocks = 0u64;
        for pos in &positions {
            cs.clear_cache();
            stats.reset();
            let _ = crate::point_standard(&mut cs, &[6, 6], pos);
            sequential_blocks += stats.snapshot().block_reads;
        }
        // Batched, cold cache once.
        cs.clear_cache();
        stats.reset();
        let _ = batch_points(&mut cs, &[6, 6], &positions);
        let batched_blocks = stats.snapshot().block_reads;
        assert!(
            batched_blocks * 3 < sequential_blocks,
            "batched {batched_blocks} vs sequential {sequential_blocks}"
        );
    }

    #[test]
    fn shared_coefficients_read_once() {
        let (_, mut cs, stats) = setup(16, 4);
        // All queries share the root path; coefficient reads must reflect
        // dedup across queries.
        let positions: Vec<Vec<usize>> = (0..16).map(|i| vec![i, i]).collect();
        cs.clear_cache();
        stats.reset();
        let _ = batch_points(&mut cs, &[4, 4], &positions);
        let reads = stats.snapshot().coeff_reads;
        // Naive: 16 queries x 25 contributions = 400 reads; shared paths
        // collapse well below that.
        assert!(reads < 300, "expected dedup, got {reads} reads");
    }

    #[test]
    fn empty_batch() {
        let (_, mut cs, _) = setup(16, 4);
        assert!(batch_points(&mut cs, &[4, 4], &[]).is_empty());
    }

    #[test]
    fn value_is_the_fold_of_tile_partials() {
        let (_, mut cs, _) = setup(64, 6);
        let plans = vec![
            reconstruct::standard_point_contributions(&[6, 6], &[13, 41]),
            reconstruct::standard_range_sum_contributions(&[6, 6], &[3, 5], &[40, 60]),
        ];
        for r in execute_plans_tiled(&mut cs, &plans) {
            let mut acc = 0.0f64;
            let mut last = None;
            for &(tile, partial) in &r.tiles {
                assert!(last.is_none_or(|t| t < tile), "tiles not ascending");
                last = Some(tile);
                acc += partial;
            }
            assert_eq!(acc.to_bits(), r.value.to_bits());
        }
    }

    /// The router invariant, stated without a router: splitting every
    /// plan's terms by a contiguous tile-range partition, executing each
    /// part independently, and re-folding the per-tile partials in
    /// ascending tile order reproduces the unsplit answer bit for bit.
    #[test]
    fn tiled_partials_merge_exactly_under_contiguous_splits() {
        let (_, mut cs, _) = setup(64, 6);
        let mut plans = Vec::new();
        for i in 0..12usize {
            plans.push(reconstruct::standard_point_contributions(
                &[6, 6],
                &[(i * 17) % 64, (i * 23) % 64],
            ));
            let lo = vec![(i * 5) % 30, (i * 7) % 30];
            plans.push(reconstruct::standard_range_sum_contributions(
                &[6, 6],
                &lo,
                &[lo[0] + 20, lo[1] + 33],
            ));
        }
        let whole = execute_plans_tiled(&mut cs, &plans);
        let num_tiles = cs.map().num_tiles();
        for shards in [1usize, 2, 4, 8] {
            let sm = ss_storage::ShardMap::even(num_tiles, shards, 1).unwrap();
            // Split each plan's terms by owning shard, preserving order.
            type SubPlan = Vec<(Vec<usize>, f64)>;
            let mut parts: Vec<Vec<SubPlan>> = vec![vec![Vec::new(); plans.len()]; shards];
            for (q, plan) in plans.iter().enumerate() {
                for (idx, w) in plan {
                    let tile = cs.map().locate(idx).tile;
                    parts[sm.owner(tile)][q].push((idx.clone(), *w));
                }
            }
            // Execute each shard's sub-plans independently, then merge:
            // per-shard tile lists concatenate in shard order, which is
            // ascending tile order because ranges are contiguous.
            let mut merged = vec![0.0f64; plans.len()];
            for shard_plans in &parts {
                for (q, r) in execute_plans_tiled(&mut cs, shard_plans).iter().enumerate() {
                    for &(_, partial) in &r.tiles {
                        merged[q] += partial;
                    }
                }
            }
            for (q, (m, w)) in merged.iter().zip(&whole).enumerate() {
                assert_eq!(
                    m.to_bits(),
                    w.value.to_bits(),
                    "plan {q} diverges at {shards} shards"
                );
            }
        }
    }
}
