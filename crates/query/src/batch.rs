//! Batched query execution with shared tile fetches.
//!
//! Workloads rarely ask one question: a dashboard refresh issues hundreds
//! of point and range queries at once. Because every query plan is a
//! contribution list over coefficients, a batch can be executed
//! *tile-major*: resolve all lists up front, group the coefficient reads by
//! tile, and stream each needed tile through memory exactly once. With a
//! cold cache this turns `Q · ceil(n/b)^d` block reads into
//! `|distinct tiles|` — the batching analogue of the paper's tiling
//! argument.

use ss_core::{reconstruct, TilingMap};
use ss_storage::CoeffRead;
use std::collections::HashMap;

/// Executes a batch of point queries, reading every needed tile once.
pub fn batch_points<C: CoeffRead>(cs: &mut C, n: &[u32], positions: &[Vec<usize>]) -> Vec<f64> {
    let _span = ss_obs::global().span("query.batch_points");
    let plans: Vec<Vec<(Vec<usize>, f64)>> = positions
        .iter()
        .map(|pos| reconstruct::standard_point_contributions(n, pos))
        .collect();
    execute_plans(cs, &plans)
}

/// Executes a batch of inclusive range-sum queries, reading every needed
/// tile once.
pub fn batch_range_sums<C: CoeffRead>(
    cs: &mut C,
    n: &[u32],
    ranges: &[(Vec<usize>, Vec<usize>)],
) -> Vec<f64> {
    let _span = ss_obs::global().span("query.batch_range_sums");
    let plans: Vec<Vec<(Vec<usize>, f64)>> = ranges
        .iter()
        .map(|(lo, hi)| reconstruct::standard_range_sum_contributions(n, lo, hi))
        .collect();
    execute_plans(cs, &plans)
}

/// Tile-major evaluation of contribution-list plans: answer `i` is the
/// weighted sum of plan `i`'s coefficients, with every `(tile, slot)` read
/// exactly once across the whole batch, in ascending tile order.
///
/// Increments the `query.batch_distinct_tiles` counter by the number of
/// distinct tiles the batch touched — the quantity the tile-major claim is
/// about. The evaluation order (and hence the floating-point answer) is
/// deterministic: it depends only on the plans and the tiling map, never on
/// the store behind `cs`, so serial and concurrent executions agree bit for
/// bit.
pub fn execute_plans<C: CoeffRead>(cs: &mut C, plans: &[Vec<(Vec<usize>, f64)>]) -> Vec<f64> {
    // Inert unless the calling thread is inside a traced request; the
    // batch's tile-fetch events then nest under this span.
    let _trace_span = ss_obs::trace::scoped("query.execute");
    // (tile, slot) -> [(query, weight)], so each coefficient is read once
    // even when several queries share it.
    let mut wanted: HashMap<(usize, usize), Vec<(usize, f64)>> = HashMap::new();
    for (q, plan) in plans.iter().enumerate() {
        for (idx, w) in plan {
            let loc = cs.map().locate(idx);
            wanted
                .entry((loc.tile, loc.slot))
                .or_default()
                .push((q, *w));
        }
    }
    let mut keys: Vec<(usize, usize)> = wanted.keys().copied().collect();
    keys.sort_unstable();
    let distinct_tiles = {
        let mut n = 0u64;
        let mut last = usize::MAX;
        for &(tile, _) in &keys {
            if tile != last {
                n += 1;
                last = tile;
            }
        }
        n
    };
    ss_obs::global()
        .counter("query.batch_distinct_tiles")
        .add(distinct_tiles);
    let mut results = vec![0.0f64; plans.len()];
    for key in keys {
        let v = cs.read_at(key.0, key.1);
        for &(q, w) in &wanted[&key] {
            results[q] += w * v;
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::{MultiIndexIter, NdArray, Shape};
    use ss_core::tiling::StandardTiling;
    use ss_storage::{wstore::mem_store, CoeffStore, IoStats};

    fn setup(
        side: usize,
        n: u32,
    ) -> (
        NdArray<f64>,
        CoeffStore<StandardTiling, ss_storage::MemBlockStore>,
        IoStats,
    ) {
        let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
            ((idx[0] * 31 + idx[1] * 7) % 23) as f64
        });
        let t = ss_core::standard::forward_to(&data);
        let stats = IoStats::new();
        let mut cs = mem_store(
            StandardTiling::new(&[n; 2], &[2; 2]),
            1 << 12,
            stats.clone(),
        );
        for idx in MultiIndexIter::new(&[side, side]) {
            cs.write(&idx, t.get(&idx));
        }
        cs.flush();
        (data, cs, stats)
    }

    #[test]
    fn batch_points_match_singles() {
        let (data, mut cs, _) = setup(64, 6);
        let positions: Vec<Vec<usize>> = (0..50)
            .map(|i| vec![(i * 13) % 64, (i * 29) % 64])
            .collect();
        let got = batch_points(&mut cs, &[6, 6], &positions);
        for (pos, g) in positions.iter().zip(&got) {
            assert!((g - data.get(pos)).abs() < 1e-9, "{pos:?}");
        }
    }

    #[test]
    fn batch_range_sums_match_naive() {
        let (data, mut cs, _) = setup(64, 6);
        let ranges: Vec<(Vec<usize>, Vec<usize>)> = (0..20)
            .map(|i| {
                let lo = vec![(i * 3) % 32, (i * 5) % 32];
                let hi = vec![lo[0] + 15, lo[1] + 20];
                (lo, hi)
            })
            .collect();
        let got = batch_range_sums(&mut cs, &[6, 6], &ranges);
        for ((lo, hi), g) in ranges.iter().zip(&got) {
            assert!(
                (g - data.region_sum(lo, hi)).abs() < 1e-6,
                "[{lo:?},{hi:?}]"
            );
        }
    }

    #[test]
    fn batching_reads_fewer_blocks_than_sequential_cold_queries() {
        let (_, mut cs, stats) = setup(64, 6);
        let positions: Vec<Vec<usize>> = (0..100)
            .map(|i| vec![(i * 7) % 64, (i * 11) % 64])
            .collect();
        // Sequential with a cold cache per query.
        let mut sequential_blocks = 0u64;
        for pos in &positions {
            cs.clear_cache();
            stats.reset();
            let _ = crate::point_standard(&mut cs, &[6, 6], pos);
            sequential_blocks += stats.snapshot().block_reads;
        }
        // Batched, cold cache once.
        cs.clear_cache();
        stats.reset();
        let _ = batch_points(&mut cs, &[6, 6], &positions);
        let batched_blocks = stats.snapshot().block_reads;
        assert!(
            batched_blocks * 3 < sequential_blocks,
            "batched {batched_blocks} vs sequential {sequential_blocks}"
        );
    }

    #[test]
    fn shared_coefficients_read_once() {
        let (_, mut cs, stats) = setup(16, 4);
        // All queries share the root path; coefficient reads must reflect
        // dedup across queries.
        let positions: Vec<Vec<usize>> = (0..16).map(|i| vec![i, i]).collect();
        cs.clear_cache();
        stats.reset();
        let _ = batch_points(&mut cs, &[4, 4], &positions);
        let reads = stats.snapshot().coeff_reads;
        // Naive: 16 queries x 25 contributions = 400 reads; shared paths
        // collapse well below that.
        assert!(reads < 300, "expected dedup, got {reads} reads");
    }

    #[test]
    fn empty_batch() {
        let (_, mut cs, _) = setup(16, 4);
        assert!(batch_points(&mut cs, &[4, 4], &[]).is_empty());
    }
}
