//! Range-sum queries (Lemma 2) over coefficient stores.

use ss_core::reconstruct;
use ss_core::TilingMap;
use ss_storage::CoeffRead;

/// Range-sum `Σ a[idx]` over the inclusive box `[lo, hi]` against a
/// **standard-form** store: evaluates at most `Π(2·n_t + 1)` coefficients
/// (Lemma 2 per axis, multiplied across axes).
pub fn range_sum_standard<C: CoeffRead>(cs: &mut C, n: &[u32], lo: &[usize], hi: &[usize]) -> f64 {
    let _span = ss_obs::global().span("query.range_sum_std");
    reconstruct::standard_range_sum_contributions(n, lo, hi)
        .iter()
        .map(|(idx, w)| w * cs.read(idx))
        .sum()
}

/// Range-sum over a **non-standard-form** store, computed by summing the
/// per-cell quad-tree contributions of the box's dyadic decomposition.
///
/// Each cubic dyadic piece contributes `cells × block-average`; the block
/// average costs `(2^d − 1)(n − m) + 1` coefficient reads (inverse SPLIT),
/// so the whole query costs `O(pieces · 2^d · log N)`.
pub fn range_sum_nonstandard<C: CoeffRead>(cs: &mut C, n: u32, lo: &[usize], hi: &[usize]) -> f64 {
    let _span = ss_obs::global().span("query.range_sum_ns");
    let mut total = 0.0;
    for piece in ss_array::decompose_range(lo, hi) {
        // Non-standard inverse SPLIT needs cubic pieces; split rectangular
        // pieces into cubes of the smallest participating level.
        let min_level = piece.axes.iter().map(|a| a.level).min().unwrap();
        let sub_counts: Vec<usize> = piece
            .axes
            .iter()
            .map(|a| 1usize << (a.level - min_level))
            .collect();
        for sub in ss_array::MultiIndexIter::new(&sub_counts) {
            let block: Vec<usize> = piece
                .axes
                .iter()
                .zip(&sub)
                .map(|(a, &s)| (a.translation << (a.level - min_level)) + s)
                .collect();
            let cells = (1usize << min_level).pow(block.len() as u32) as f64;
            let avg: f64 =
                reconstruct::nonstandard_block_average_contributions(n, min_level, &block)
                    .iter()
                    .map(|(idx, w)| w * cs.read(idx))
                    .sum();
            total += cells * avg;
        }
    }
    total
}

/// Scaling-slot fast path for standard-form range sums.
///
/// Decomposes the box into dyadic ranges; each range's sum is
/// `cells × average`, and with materialised scaling slots
/// ([`crate::scalings::materialize_standard_scalings`]) every per-axis
/// block average is available *inside one tile*: the in-tile root scaling
/// plus the in-tile path details down to the block level. Each dyadic
/// piece therefore reads exactly **one block** (adjacent pieces often share
/// it), versus the `≈ Π ceil(n_t/b_t)` path tiles of the Lemma 2 plan.
pub fn range_sum_standard_fast<C: CoeffRead<Map = ss_core::tiling::StandardTiling>>(
    cs: &mut C,
    lo: &[usize],
    hi: &[usize],
) -> f64 {
    let _span = ss_obs::global().span("query.range_sum_std_fast");
    let d = cs.map().ndim();
    assert_eq!(lo.len(), d);
    assert_eq!(hi.len(), d);
    let axes = cs.map().axes().to_vec();
    let tile_grid = ss_array::Shape::new(&axes.iter().map(|a| a.num_tiles()).collect::<Vec<_>>());
    let slot_grid = ss_array::Shape::new(&axes.iter().map(|a| a.block_side()).collect::<Vec<_>>());
    let mut total = 0.0;
    for piece in ss_array::decompose_range(lo, hi) {
        // Per-axis: the (tile, [(slot, weight)]) one-tile average plan.
        let mut tile_tuple = vec![0usize; d];
        let per_axis: Vec<Vec<(usize, f64)>> = (0..d)
            .map(|t| {
                let axis = &axes[t];
                let n = axis.levels();
                let m = piece.axes[t].level;
                let k = piece.axes[t].translation;
                if m == n {
                    // Full axis: the true average at per-axis index 0.
                    let loc = axis.locate(0);
                    tile_tuple[t] = loc.tile;
                    return vec![(loc.slot, 1.0)];
                }
                // Tile holding the level-(m+1) detail covering the block.
                let probe = ss_core::Layout1d::new(n).index_of(ss_core::Coeff1d::Detail {
                    level: m + 1,
                    k: k >> 1,
                });
                let loc = axis.locate(probe);
                tile_tuple[t] = loc.tile;
                let (j_top, _) = axis.tile_root(loc.tile);
                let mut list = vec![(0usize, 1.0)]; // in-tile scaling slot
                for j in (m + 1)..=j_top {
                    let shift = j - m;
                    let kk = k >> shift;
                    let local_depth = j_top - j;
                    let slot =
                        (1usize << local_depth) + (kk - ((kk >> local_depth) << local_depth));
                    let sign = if (k >> (shift - 1)) & 1 == 1 {
                        -1.0
                    } else {
                        1.0
                    };
                    list.push((slot, sign));
                }
                list
            })
            .collect();
        let tile = tile_grid.offset(&tile_tuple);
        let counts: Vec<usize> = per_axis.iter().map(|v| v.len()).collect();
        let mut avg = 0.0;
        let mut slot_idx = vec![0usize; d];
        for choice in ss_array::MultiIndexIter::new(&counts) {
            let mut w = 1.0;
            for (t, &c) in choice.iter().enumerate() {
                let (slot, f) = per_axis[t][c];
                slot_idx[t] = slot;
                w *= f;
            }
            avg += w * cs.read_at(tile, slot_grid.offset(&slot_idx));
        }
        total += avg * piece.len() as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::{MultiIndexIter, NdArray, Shape};
    use ss_core::tiling::{NonStandardTiling, StandardTiling};
    use ss_storage::{wstore::mem_store, IoStats};

    #[test]
    fn standard_range_sum_matches_naive() {
        let a = NdArray::from_fn(Shape::new(&[16, 8]), |idx| {
            ((idx[0] * 3 + idx[1] * 5) % 11) as f64 - 4.0
        });
        let t = ss_core::standard::forward_to(&a);
        let mut cs = mem_store(StandardTiling::new(&[4, 3], &[2, 1]), 1024, IoStats::new());
        for idx in MultiIndexIter::new(&[16, 8]) {
            cs.write(&idx, t.get(&idx));
        }
        for (lo, hi) in [
            ([0usize, 0usize], [15usize, 7usize]),
            ([3, 2], [12, 6]),
            ([5, 5], [5, 5]),
            ([0, 7], [15, 7]),
        ] {
            let want = a.region_sum(&lo, &hi);
            let got = range_sum_standard(&mut cs, &[4, 3], &lo, &hi);
            assert!(
                (got - want).abs() < 1e-9,
                "[{lo:?},{hi:?}]: {got} vs {want}"
            );
        }
    }

    #[test]
    fn nonstandard_range_sum_matches_naive() {
        let a = NdArray::from_fn(Shape::cube(2, 16), |idx| {
            ((idx[0] * 7 + idx[1]) % 9) as f64 + 0.25
        });
        let t = ss_core::nonstandard::forward_to(&a);
        let mut cs = mem_store(NonStandardTiling::new(2, 4, 2), 1024, IoStats::new());
        for idx in MultiIndexIter::new(&[16, 16]) {
            cs.write(&idx, t.get(&idx));
        }
        for (lo, hi) in [
            ([0usize, 0usize], [15usize, 15usize]),
            ([1, 2], [13, 9]),
            ([8, 8], [11, 11]),
            ([0, 0], [0, 0]),
        ] {
            let want = a.region_sum(&lo, &hi);
            let got = range_sum_nonstandard(&mut cs, 4, &lo, &hi);
            assert!(
                (got - want).abs() < 1e-9,
                "[{lo:?},{hi:?}]: {got} vs {want}"
            );
        }
    }

    #[test]
    fn fast_range_sum_matches_naive_and_reads_one_tile_per_piece() {
        let a = NdArray::from_fn(Shape::cube(2, 64), |idx| {
            ((idx[0] * 5 + idx[1] * 3) % 13) as f64 - 4.0
        });
        let t = ss_core::standard::forward_to(&a);
        let stats = IoStats::new();
        let mut cs = mem_store(StandardTiling::new(&[6, 6], &[2, 2]), 4096, stats.clone());
        for idx in MultiIndexIter::new(&[64, 64]) {
            cs.write(&idx, t.get(&idx));
        }
        crate::scalings::materialize_standard_scalings(&mut cs, &[6, 6]);
        for (lo, hi) in [
            ([0usize, 0usize], [63usize, 63usize]),
            ([3, 5], [42, 60]),
            ([16, 32], [31, 47]),
            ([7, 7], [7, 7]),
        ] {
            let want = a.region_sum(&lo, &hi);
            let got = range_sum_standard_fast(&mut cs, &lo, &hi);
            assert!(
                (got - want).abs() < 1e-6,
                "[{lo:?},{hi:?}]: {got} vs {want}"
            );
        }
        // An aligned dyadic box is one piece: exactly one block read cold.
        cs.clear_cache();
        stats.reset();
        let got = range_sum_standard_fast(&mut cs, &[16, 32], &[31, 47]);
        assert!((got - a.region_sum(&[16, 32], &[31, 47])).abs() < 1e-6);
        assert_eq!(stats.snapshot().block_reads, 1);
    }

    #[test]
    fn range_sum_block_io_is_logarithmic_with_tiling() {
        // A full-domain sum touches only the top tiles.
        let a = NdArray::from_fn(Shape::new(&[64]), |idx| idx[0] as f64);
        let t = ss_core::standard::forward_to(&a);
        let stats = IoStats::new();
        let mut cs = mem_store(StandardTiling::new(&[6], &[2]), 1024, stats.clone());
        for i in 0..64usize {
            cs.write(&[i], t.get(&[i]));
        }
        cs.clear_cache();
        stats.reset();
        let got = range_sum_standard(&mut cs, &[6], &[0], &[63]);
        assert!((got - a.total()).abs() < 1e-9);
        assert_eq!(stats.snapshot().block_reads, 1, "full sum = average only");
    }
}
