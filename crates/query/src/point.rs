//! Point queries (Lemma 1) over coefficient stores.

use ss_core::reconstruct;
use ss_core::tiling::{NonStandardTiling, StandardTiling};
use ss_core::TilingMap;
use ss_storage::CoeffRead;

/// Point query against a **standard-form** store laid out by any tiling
/// map: evaluates the `Π(n_t + 1)` Lemma 1 contributions.
///
/// `n` are the per-axis domain levels.
pub fn point_standard<C: CoeffRead>(cs: &mut C, n: &[u32], pos: &[usize]) -> f64 {
    let _span = ss_obs::global().span("query.point_std");
    reconstruct::standard_point_contributions(n, pos)
        .iter()
        .map(|(idx, w)| w * cs.read(idx))
        .sum()
}

/// Point query against a **non-standard-form** store: evaluates the
/// `(2^d − 1)·n + 1` quad-tree path contributions.
pub fn point_nonstandard<C: CoeffRead>(cs: &mut C, n: u32, pos: &[usize]) -> f64 {
    let _span = ss_obs::global().span("query.point_ns");
    reconstruct::nonstandard_point_contributions(n, pos.len(), pos)
        .iter()
        .map(|(idx, w)| w * cs.read(idx))
        .sum()
}

/// Single-tile fast-path point query for the **standard form**.
///
/// Requires the redundant scaling slots to be materialised (see
/// [`crate::scalings::materialize_standard_scalings`]). The answer is
/// assembled entirely from the *bottom* tile of the query position: per
/// axis, the in-tile root scaling plus the in-tile detail path; the cross
/// product of those per-axis lists addresses only slots of that one tile,
/// so the query reads exactly **one block**.
pub fn point_standard_fast<C: CoeffRead<Map = StandardTiling>>(cs: &mut C, pos: &[usize]) -> f64 {
    let _span = ss_obs::global().span("query.point_std_fast");
    // Per-axis in-tile contribution lists as (slot, weight).
    let per_axis: Vec<Vec<(usize, f64)>> = cs
        .map()
        .axes()
        .iter()
        .zip(pos)
        .map(|(axis, &p)| {
            // Bottom tile along this axis: the one holding the level-1
            // detail of `p` (or the root tile when n == 0).
            let n = axis.levels();
            if n == 0 {
                return vec![(0usize, 1.0)];
            }
            let loc = axis.locate(
                ss_core::Layout1d::new(n).index_of(ss_core::Coeff1d::Detail {
                    level: 1,
                    k: p >> 1,
                }),
            );
            let tile = loc.tile;
            let (j_top, _k_top) = axis.tile_root(tile);
            let mut list = vec![(0usize, 1.0)]; // in-tile scaling slot
            for j in 1..=j_top {
                let local_depth = j_top - j;
                let k = p >> j;
                let k_top2 = k >> local_depth;
                let slot = (1usize << local_depth) + (k - (k_top2 << local_depth));
                let sign = if (p >> (j - 1)) & 1 == 0 { 1.0 } else { -1.0 };
                list.push((slot, sign));
            }
            list
        })
        .collect();
    // The tile tuple is the same for every term: the bottom tile per axis.
    let tile_tuple: Vec<usize> = cs
        .map()
        .axes()
        .iter()
        .zip(pos)
        .map(|(axis, &p)| {
            let n = axis.levels();
            if n == 0 {
                0
            } else {
                axis.locate(
                    ss_core::Layout1d::new(n).index_of(ss_core::Coeff1d::Detail {
                        level: 1,
                        k: p >> 1,
                    }),
                )
                .tile
            }
        })
        .collect();
    let tile_grid = ss_array::Shape::new(
        &cs.map()
            .axes()
            .iter()
            .map(|a| a.num_tiles())
            .collect::<Vec<_>>(),
    );
    let slot_grid = ss_array::Shape::new(
        &cs.map()
            .axes()
            .iter()
            .map(|a| a.block_side())
            .collect::<Vec<_>>(),
    );
    let tile = tile_grid.offset(&tile_tuple);
    let counts: Vec<usize> = per_axis.iter().map(|v| v.len()).collect();
    let mut total = 0.0;
    let mut slot_idx = vec![0usize; per_axis.len()];
    for choice in ss_array::MultiIndexIter::new(&counts) {
        let mut w = 1.0;
        for (t, &c) in choice.iter().enumerate() {
            let (s, f) = per_axis[t][c];
            slot_idx[t] = s;
            w *= f;
        }
        total += w * cs.read_at(tile, slot_grid.offset(&slot_idx));
    }
    total
}

/// Single-tile fast-path point query for the **non-standard form**.
///
/// Requires slot 0 of every tile to hold the scaling coefficient of the
/// tile's root node (see
/// [`crate::scalings::materialize_nonstandard_scalings`]). Reads exactly one
/// block: the bottom tile covering `pos`.
pub fn point_nonstandard_fast<C: CoeffRead<Map = NonStandardTiling>>(
    cs: &mut C,
    n: u32,
    pos: &[usize],
) -> f64 {
    let _span = ss_obs::global().span("query.point_ns_fast");
    let d = pos.len();
    if n == 0 {
        return cs.read_at(0, 0);
    }
    // Bottom tile: the one holding the level-1 details of pos's node.
    let node1: Vec<usize> = pos.iter().map(|&p| p >> 1).collect();
    let probe = ss_core::nonstandard::index_of(
        n,
        &ss_core::nonstandard::NsCoeff::Detail {
            level: 1,
            node: node1,
            subband: {
                let mut s = vec![false; d];
                s[d - 1] = true;
                s
            },
        },
    );
    let loc = cs.map().locate(&probe);
    let tile = loc.tile;
    let (j_top, _root) = cs.map().tile_root(tile);
    // Start from the tile-root scaling and add detail contributions for
    // levels 1..=j_top, all of which live in this tile.
    let mut value = cs.read_at(tile, 0);
    for j in 1..=j_top {
        let node: Vec<usize> = pos.iter().map(|&p| p >> j).collect();
        for eps in 1usize..(1usize << d) {
            let mut sign = 1.0;
            let mut subband = Vec::with_capacity(d);
            for (t, &p) in pos.iter().enumerate() {
                let e = (eps >> (d - 1 - t)) & 1 == 1;
                subband.push(e);
                if e && (p >> (j - 1)) & 1 == 1 {
                    sign = -sign;
                }
            }
            let idx = ss_core::nonstandard::index_of(
                n,
                &ss_core::nonstandard::NsCoeff::Detail {
                    level: j,
                    node: node.clone(),
                    subband,
                },
            );
            let l = cs.map().locate(&idx);
            debug_assert_eq!(l.tile, tile, "fast path escaped its tile");
            value += sign * cs.read_at(l.tile, l.slot);
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_array::{MultiIndexIter, NdArray, Shape};
    use ss_storage::{wstore::mem_store, CoeffStore, IoStats};

    fn store_standard(
        a: &NdArray<f64>,
        n: &[u32],
        b: &[u32],
    ) -> (
        CoeffStore<StandardTiling, ss_storage::MemBlockStore>,
        IoStats,
    ) {
        let t = ss_core::standard::forward_to(a);
        let stats = IoStats::new();
        let mut cs = mem_store(StandardTiling::new(n, b), 1024, stats.clone());
        for idx in MultiIndexIter::new(a.shape().dims()) {
            cs.write(&idx, t.get(&idx));
        }
        cs.flush();
        (cs, stats)
    }

    fn sample(shape: &Shape) -> NdArray<f64> {
        NdArray::from_fn(shape.clone(), |idx| {
            idx.iter()
                .enumerate()
                .map(|(t, &i)| ((i * (t + 3)) % 7) as f64)
                .sum::<f64>()
                - 2.0
        })
    }

    #[test]
    fn plain_point_query_standard_2d() {
        let a = sample(&Shape::new(&[8, 16]));
        let (mut cs, _) = store_standard(&a, &[3, 4], &[1, 2]);
        for idx in MultiIndexIter::new(&[8, 16]) {
            let got = point_standard(&mut cs, &[3, 4], &idx);
            assert!((got - a.get(&idx)).abs() < 1e-9, "{idx:?}");
        }
    }

    #[test]
    fn fast_point_query_standard_matches_plain() {
        let a = sample(&Shape::new(&[16, 16]));
        let (mut cs, _) = store_standard(&a, &[4, 4], &[2, 2]);
        crate::scalings::materialize_standard_scalings(&mut cs, &[4, 4]);
        for idx in MultiIndexIter::new(&[16, 16]) {
            let got = point_standard_fast(&mut cs, &idx);
            assert!(
                (got - a.get(&idx)).abs() < 1e-9,
                "{idx:?}: {got} vs {}",
                a.get(&idx)
            );
        }
    }

    #[test]
    fn fast_point_query_reads_one_block() {
        let a = sample(&Shape::new(&[16, 16]));
        let (mut cs, stats) = store_standard(&a, &[4, 4], &[2, 2]);
        crate::scalings::materialize_standard_scalings(&mut cs, &[4, 4]);
        cs.clear_cache();
        stats.reset();
        let _ = point_standard_fast(&mut cs, &[9, 6]);
        assert_eq!(
            stats.snapshot().block_reads,
            1,
            "fast path must read one tile"
        );
    }

    #[test]
    fn plain_point_query_nonstandard_2d() {
        let a = sample(&Shape::cube(2, 16));
        let t = ss_core::nonstandard::forward_to(&a);
        let stats = IoStats::new();
        let mut cs = mem_store(NonStandardTiling::new(2, 4, 2), 1024, stats);
        for idx in MultiIndexIter::new(&[16, 16]) {
            cs.write(&idx, t.get(&idx));
        }
        for idx in MultiIndexIter::new(&[16, 16]) {
            let got = point_nonstandard(&mut cs, 4, &idx);
            assert!((got - a.get(&idx)).abs() < 1e-9, "{idx:?}");
        }
    }

    #[test]
    fn fast_point_query_nonstandard_matches_and_reads_one_block() {
        let a = sample(&Shape::cube(2, 16));
        let t = ss_core::nonstandard::forward_to(&a);
        let stats = IoStats::new();
        let mut cs = mem_store(NonStandardTiling::new(2, 4, 2), 1024, stats.clone());
        for idx in MultiIndexIter::new(&[16, 16]) {
            cs.write(&idx, t.get(&idx));
        }
        crate::scalings::materialize_nonstandard_scalings(&mut cs, 4);
        for idx in MultiIndexIter::new(&[16, 16]) {
            let got = point_nonstandard_fast(&mut cs, 4, &idx);
            assert!((got - a.get(&idx)).abs() < 1e-9, "{idx:?}");
        }
        cs.clear_cache();
        stats.reset();
        let _ = point_nonstandard_fast(&mut cs, 4, &[13, 2]);
        assert_eq!(stats.snapshot().block_reads, 1);
    }

    #[test]
    fn plain_point_query_io_grows_with_log() {
        // Without the fast path a point query touches ≈ ceil(n/b) tiles per
        // axis pattern; verify it is strictly more than one block but far
        // fewer than N.
        let a = sample(&Shape::new(&[64]));
        let (mut cs, stats) = store_standard(&a, &[6], &[2]);
        cs.clear_cache();
        stats.reset();
        let got = point_standard(&mut cs, &[6], &[37]);
        assert!((got - a.get(&[37])).abs() < 1e-9);
        let reads = stats.snapshot().block_reads;
        assert!(
            (2..=3).contains(&reads),
            "expected ≈ ceil(6/2) tiles, got {reads}"
        );
    }
}
