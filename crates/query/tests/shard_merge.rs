//! Property test backing the scatter-gather router's exactness claim:
//! for **any** batch of plans and **any** contiguous partition of tile
//! space into 1/2/4/8 shards, executing each plan's per-shard slice
//! independently and re-folding the per-tile partials in ascending tile
//! order is bit-identical to executing the whole plan against one store.
//! `f64::to_bits` equality, no tolerances — the router sells exact
//! answers, not approximations.

use proptest::prelude::*;
use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_core::tiling::StandardTiling;
use ss_core::{reconstruct, TilingMap};
use ss_query::execute_plans_tiled;
use ss_storage::wstore::{mem_store, CoeffStore};
use ss_storage::{IoStats, MemBlockStore, ShardMap};

const N: u32 = 5;
const SIDE: usize = 1 << N;

/// SplitMix64 — derives every random choice from the sampled seed, so
/// failures reproduce from the proptest case alone.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn weight(&mut self) -> f64 {
        (self.next() as f64 / u64::MAX as f64) * 4.0 - 2.0
    }
}

fn store() -> CoeffStore<StandardTiling, MemBlockStore> {
    let a = NdArray::from_fn(Shape::cube(2, SIDE), |idx| {
        ((idx[0] * 31 + idx[1] * 7) % 23) as f64 / 3.0 - 2.5
    });
    let t = ss_core::standard::forward_to(&a);
    let mut cs = mem_store(
        StandardTiling::new(&[N; 2], &[2; 2]),
        1 << 10,
        IoStats::new(),
    );
    for idx in MultiIndexIter::new(&[SIDE, SIDE]) {
        cs.write(&idx, t.get(&idx));
    }
    cs
}

/// A mix of the three plan shapes the router routes: point
/// reconstructions, range-sum aggregates, and raw weighted term lists
/// (what a `partial` sub-request carries).
fn random_plans(rng: &mut Mix, count: usize) -> Vec<Vec<(Vec<usize>, f64)>> {
    (0..count)
        .map(|_| match rng.below(3) {
            0 => reconstruct::standard_point_contributions(
                &[N; 2],
                &[rng.below(SIDE), rng.below(SIDE)],
            ),
            1 => {
                let lo = [rng.below(SIDE), rng.below(SIDE)];
                let hi = [
                    lo[0] + rng.below(SIDE - lo[0]),
                    lo[1] + rng.below(SIDE - lo[1]),
                ];
                reconstruct::standard_range_sum_contributions(&[N; 2], &lo, &hi)
            }
            _ => (0..1 + rng.below(20))
                .map(|_| (vec![rng.below(SIDE), rng.below(SIDE)], rng.weight()))
                .collect(),
        })
        .collect()
}

/// A random *contiguous* partition: `shards - 1` distinct cut points.
/// Contiguity is the property the merge relies on; the cut positions
/// are free.
fn random_partition(rng: &mut Mix, num_tiles: usize, shards: usize) -> ShardMap {
    let mut cuts = std::collections::BTreeSet::new();
    while cuts.len() < shards - 1 {
        cuts.insert(1 + rng.below(num_tiles - 1));
    }
    let mut bounds = vec![0usize];
    bounds.extend(cuts);
    bounds.push(num_tiles);
    ShardMap::from_bounds(bounds, 1).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn routed_merge_is_bit_identical_for_any_contiguous_partition(
        seed in any::<u64>(),
        count in 1usize..10,
    ) {
        let mut rng = Mix(seed);
        let mut cs = store();
        let plans = random_plans(&mut rng, count);
        let whole = execute_plans_tiled(&mut cs, &plans);
        let num_tiles = cs.map().num_tiles();

        for shards in [1usize, 2, 4, 8] {
            let maps = [
                ShardMap::even(num_tiles, shards, 1).unwrap(),
                random_partition(&mut rng, num_tiles, shards),
            ];
            for map in maps {
                // Route: split every plan's terms by owning shard,
                // preserving within-shard term order (what the router's
                // `partial` sub-requests carry).
                type SubPlan = Vec<(Vec<usize>, f64)>;
                let mut parts: Vec<Vec<SubPlan>> = vec![vec![Vec::new(); plans.len()]; shards];
                for (q, plan) in plans.iter().enumerate() {
                    for (idx, w) in plan {
                        let tile = cs.map().locate(idx).tile;
                        parts[map.owner(tile)][q].push((idx.clone(), *w));
                    }
                }
                // Merge: fold per-tile partials in ascending shard order
                // (= ascending tile order, ranges being contiguous).
                let mut merged = vec![0.0f64; plans.len()];
                for shard_plans in &parts {
                    let results = execute_plans_tiled(&mut cs, shard_plans);
                    for (q, r) in results.iter().enumerate() {
                        for &(_, partial) in &r.tiles {
                            merged[q] += partial;
                        }
                    }
                }
                for (q, (m, w)) in merged.iter().zip(&whole).enumerate() {
                    prop_assert_eq!(
                        m.to_bits(),
                        w.value.to_bits(),
                        "plan {} diverges at {} shards (bounds {:?})",
                        q,
                        shards,
                        map.bounds()
                    );
                }
            }
        }
    }
}
