//! Every query entry point must record its latency under its own span
//! label — the standard-form variants were once copy-pasted with the
//! non-standard `*_ns` names, which made the read path impossible to
//! profile per variant. This test exercises each path once and asserts
//! that each distinct label saw at least one recording, and that the
//! labels are pairwise distinct in a metrics snapshot.

use ss_array::{MultiIndexIter, NdArray, Shape};
use ss_core::tiling::{NonStandardTiling, StandardTiling};
use ss_storage::{wstore::mem_store, IoStats};
use std::collections::HashSet;

#[test]
fn every_query_variant_records_a_distinct_span_label() {
    // Standard-form store with materialised scaling slots.
    let a = NdArray::from_fn(Shape::cube(2, 16), |idx| {
        ((idx[0] * 5 + idx[1] * 3) % 11) as f64 - 4.0
    });
    let t = ss_core::standard::forward_to(&a);
    let mut std_cs = mem_store(StandardTiling::new(&[4, 4], &[2, 2]), 1024, IoStats::new());
    for idx in MultiIndexIter::new(&[16, 16]) {
        std_cs.write(&idx, t.get(&idx));
    }
    ss_query::materialize_standard_scalings(&mut std_cs, &[4, 4]);

    // Non-standard-form store, also with scaling slots.
    let tn = ss_core::nonstandard::forward_to(&a);
    let mut ns_cs = mem_store(NonStandardTiling::new(2, 4, 2), 1024, IoStats::new());
    for idx in MultiIndexIter::new(&[16, 16]) {
        ns_cs.write(&idx, tn.get(&idx));
    }
    ss_query::materialize_nonstandard_scalings(&mut ns_cs, 4);

    // Exercise every variant once.
    let _ = ss_query::point_standard(&mut std_cs, &[4, 4], &[3, 9]);
    let _ = ss_query::point_standard_fast(&mut std_cs, &[3, 9]);
    let _ = ss_query::point_nonstandard(&mut ns_cs, 4, &[3, 9]);
    let _ = ss_query::point_nonstandard_fast(&mut ns_cs, 4, &[3, 9]);
    let _ = ss_query::range_sum_standard(&mut std_cs, &[4, 4], &[1, 2], &[10, 13]);
    let _ = ss_query::range_sum_standard_fast(&mut std_cs, &[1, 2], &[10, 13]);
    let _ = ss_query::range_sum_nonstandard(&mut ns_cs, 4, &[1, 2], &[10, 13]);
    let _ = ss_query::reconstruct_box_standard(&mut std_cs, &[4, 4], &[2, 2], &[5, 5]);
    let _ = ss_query::reconstruct_range_nonstandard(
        &mut ns_cs,
        4,
        &ss_array::DyadicRange::cube(2, &[1, 1]),
    );
    let _ = ss_query::batch_points(&mut std_cs, &[4, 4], &[vec![1, 1], vec![14, 2]]);
    let _ = ss_query::batch_range_sums(
        &mut std_cs,
        &[4, 4],
        &[(vec![0, 0], vec![7, 7]), (vec![4, 4], vec![11, 11])],
    );

    let labels = [
        "query.point_std",
        "query.point_std_fast",
        "query.point_ns",
        "query.point_ns_fast",
        "query.range_sum_std",
        "query.range_sum_std_fast",
        "query.range_sum_ns",
        "query.reconstruct_std",
        "query.reconstruct_ns",
        "query.batch_points",
        "query.batch_range_sums",
    ];
    let distinct: HashSet<&str> = labels.iter().copied().collect();
    assert_eq!(
        distinct.len(),
        labels.len(),
        "labels must be pairwise distinct"
    );
    let registry = ss_obs::global();
    for label in labels {
        let count = registry.histogram(label).snapshot().count;
        assert!(count >= 1, "span {label} was never recorded");
    }
    // The distinct-tiles counter of the two batch calls moved.
    assert!(
        registry.counter("query.batch_distinct_tiles").get() >= 2,
        "batch execution must count distinct tiles"
    );
}
