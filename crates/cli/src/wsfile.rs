//! Thin wrapper over the persistent store format.
//!
//! The `.ws` format itself lives in `ss-storage` ([`ss_storage::wsfile`])
//! so library users can create and open stores without going through the
//! CLI; this module only re-exports the names the subcommands use.

pub use ss_storage::wsfile::{convert_to_v3, Meta, WsFile};
