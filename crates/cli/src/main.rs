//! `shiftsplit` — command-line front end for wavelet-transformed
//! multidimensional stores.
//!
//! ```text
//! shiftsplit create  store.ws --levels 3,3,5 [--tiles 2,2,2] [--axis 2]
//! shiftsplit ingest  store.ws --data values.csv [--chunk 2,2,3]
//! shiftsplit point   store.ws 3,7,100
//! shiftsplit sum     store.ws --lo 0,0,0 --hi 7,7,99
//! shiftsplit extract store.ws --lo 0,0,0 --hi 7,7,0 [--out region.csv]
//! shiftsplit update  store.ws --at 3,5,0 --dims 2,2,4 --data delta.csv
//! shiftsplit append  store.ws --extent 32 --data month.csv
//! shiftsplit stats   store.ws
//! shiftsplit stream  --data readings.csv --k 32 [--buffer 64]
//! shiftsplit demo
//! ```
//!
//! Stores persist as a blocks file plus a `.meta` text header; all
//! maintenance (ingest, update, append with domain expansion) runs in the
//! wavelet domain via SHIFT-SPLIT.

mod args;
mod commands;
mod csv;
mod metrics;
mod wsfile;

use args::Args;

const USAGE: &str = "\
shiftsplit — I/O-efficient maintenance of wavelet-transformed data

USAGE:
  shiftsplit <command> [args]

COMMANDS:
  create  <store> --levels a,b,…   create an empty store (log2 sizes)
  ingest  <store> --data FILE [--workers N] [--coalesce N]
          [--format v3 [--threshold E | --topk K]]
          transform a full dataset into the store
          (--workers 0 = one worker per core; omit for the serial driver;
          --coalesce N group-commits every N chunks through the tile-major
          delta buffer, 0 = one flush for the whole ingest;
          --format v3 rewrites the result into the sparse bucketed layout
          of docs/FORMAT.md §8 — bytes on disk shrink with the data's
          sparsity; --threshold E zeroes coefficients with |c| <= E and
          --topk K keeps the K largest per tile, both reporting the
          achieved reconstruction error, see docs/ERROR_MODEL.md)
  point   <store> i,j,…            query one cell
  sum     <store> --lo … --hi …    range-sum query
  extract <store> --lo … --hi …    reconstruct a region
  update  <store> --at … --dims … --data FILE   add a delta box
          or: --batch FILE [--workers N] [--mode exact|merged]
          (one box per line `at;dims;datafile`; the batch is buffered
          tile-major and group-committed — one read-modify-write per
          dirty tile and one durability flush for the whole batch;
          exact mode is bit-identical to applying the boxes one by one)
  append  <store> --extent N --data FILE        append along the grow axis
          (dense stores only; v3 stores must be re-ingested to grow)
  scrub   <store>                  verify every block against its CRC-32
          (exit 0 = intact, 2 = corruption detected; on v3 stores the
          scrub also checks directory geometry and payload encoding)
  stats   <store>                  show store geometry and on-disk bytes
          (v3 stores also report live payload vs. garbage bytes)
  synopsis <store> --k K --out F   export a K-term synopsis blob
  asksyn  <F> --at …|--lo …--hi …  approximate queries from a synopsis
  stream  --data FILE --k K        best-K synopsis of a value stream
  serve   <store> [--port N] [--workers W] [--batch B] [--requests K]
          [--addr-file F] [--writable [--wal F] [--mode exact|merged]]
          [--slow-ms T] [--trace-out F | --trace-ring] [--metrics-port N]
          serve point/sum queries over TCP
          (line-delimited JSON; workers batch concurrent requests
          tile-major so hot tiles are fetched once; --requests K exits
          after K responses; --port 0 picks an ephemeral port;
          --writable also accepts update/commit operations: commits are
          fsynced to the write-ahead log before they become visible,
          crash-left commits replay on startup, and a clean shutdown
          checkpoints the store and truncates the log;
          --trace-out records every request's spans, tile fetches and the
          epoch-tagged commit pipeline as ss-trace-v1 JSON lines;
          --trace-ring keeps them in the in-memory ring only; --slow-ms T
          logs requests slower than T ms on stderr; --metrics-port serves
          the live registry with recent-window percentiles)
  serve   <store> --router --shards a:p,b:p,… [--replicas N] [--bounds …]
          scatter-gather query router over shard servers
          (the store argument supplies geometry only; each shard server
          owns a contiguous tile range — even split, or --bounds from
          shard-split; --replicas N groups every N consecutive --shards
          addresses into one shard's replica set, reads load-balance
          across replicas and fail over; answers are bit-identical to a
          single server; update/commit fan out to every replica and ack
          only when all shards confirm)
  shard-split <store> --shards S [--replicas N] [--out F]
          offline rebalancer: weighs tiles by non-zero coefficients and
          prints balanced --bounds for serve --router
  wal-replay <store> [--wal F]   replay crash-left commits from the
          write-ahead log onto the store, sync it, truncate the log
  query   <addr> (--at i,j,… | --lo … --hi …) [--out F] [--trace N]
          one-shot client for a running serve instance
          (--trace N tags the request so a tracing server records its
          spans under id N; older servers ignore the tag)
  trace-dump <file> [--chrome OUT]   summarise an ss-trace-v1 log:
          event counts, span matching, per-span latency, commit epochs;
          --chrome converts it for chrome://tracing / ui.perfetto.dev
  serve-metrics --port N [--requests K] [store]   expose the metrics registry
          (Prometheus text on any path, ss-metrics-v1 JSON on *.json paths)
  stats --watch host:port [--iterations N] [--interval-ms M]
          top-style live view of a running server's metrics endpoint
  demo                             self-contained demonstration

Every command also accepts --metrics-out FILE to write an ss-metrics-v1
JSON snapshot (counters, latency histograms, phase timings) instead of the
one-line stderr summary; ingest additionally accepts --metrics-port N to
serve the registry live while it runs, and --fault-read P / --fault-write P
/ --fault-seed S / --retries N to run under deterministic injected storage
faults absorbed by bounded-backoff retries (testing/benchmarks).

Run any command without its required flags to see what it needs.";

fn main() {
    // Storage failures escaping the infallible BlockStore face unwind
    // with a typed `StorageError` payload; print those as one-line
    // diagnostics instead of an opaque `Box<dyn Any>` panic trace.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(e) = info.payload().downcast_ref::<ss_storage::StorageError>() {
            eprintln!("storage error: {e}");
        } else {
            default_hook(info);
        }
    }));
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&raw) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {}", e.msg);
            if e.usage {
                eprintln!();
                eprintln!("{USAGE}");
            }
            e.code
        }
    };
    std::process::exit(code);
}

use commands::CmdError;

fn run(raw: &[String]) -> Result<(), CmdError> {
    let command = raw.first().map(|s| s.as_str()).unwrap_or("");
    let rest = if raw.is_empty() { &[][..] } else { &raw[1..] };
    let args = Args::parse(rest).map_err(CmdError::from)?;
    // Per-command wall-clock span. It records on drop — i.e. *after* any
    // `--metrics-out` snapshot this command writes — so `cli.*_ns` shows
    // up on the live `serve-metrics` endpoint and in later snapshots from
    // the same process (e.g. `demo`'s nested commands).
    let _span = ss_obs::global().span(&format!("cli.{}_ns", command_slug(command)));
    let result: Result<(), String> = match command {
        "create" => commands::create(&args),
        "ingest" => commands::ingest(&args),
        "point" => commands::point(&args),
        "sum" => commands::sum(&args),
        "extract" => commands::extract(&args),
        "update" => commands::update(&args),
        "append" => commands::append(&args),
        "scrub" => return commands::scrub(&args),
        "stats" => commands::stats(&args),
        "synopsis" => commands::synopsis(&args),
        "asksyn" => commands::query_synopsis(&args),
        "stream" => commands::stream(&args),
        "serve" => commands::serve(&args),
        "shard-split" => commands::shard_split(&args),
        "wal-replay" => commands::wal_replay(&args),
        "query" => commands::query(&args),
        "trace-dump" => commands::trace_dump(&args),
        "serve-metrics" => commands::serve_metrics(&args),
        "demo" => demo(),
        "" => Err("no command given".into()),
        other => Err(format!("unknown command: {other}")),
    };
    result.map_err(CmdError::from)
}

/// Maps a command name to the metric suffix of its `cli.<cmd>_ns` span;
/// unknown/empty commands share one bucket so bad input can't mint
/// arbitrary metric names.
fn command_slug(command: &str) -> &'static str {
    match command {
        "create" => "create",
        "ingest" => "ingest",
        "point" => "point",
        "sum" => "sum",
        "extract" => "extract",
        "update" => "update",
        "append" => "append",
        "scrub" => "scrub",
        "stats" => "stats",
        "synopsis" => "synopsis",
        "asksyn" => "asksyn",
        "stream" => "stream",
        "serve" => "serve",
        "shard-split" => "shard_split",
        "wal-replay" => "wal_replay",
        "query" => "query",
        "trace-dump" => "trace_dump",
        "serve-metrics" => "serve_metrics",
        "demo" => "demo",
        _ => "unknown",
    }
}

/// A self-contained walkthrough requiring no input files.
fn demo() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("ss_cli_demo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let store = dir.join("demo.ws");
    let store_s = store.to_str().ok_or("non-utf8 temp path")?.to_string();

    println!("## creating an 8x8x32 store (growing along axis 2)\n");
    run(&to_args(&[
        "create", &store_s, "--levels", "3,3,5", "--tiles", "2,2,2",
    ]))?;

    println!("\n## ingesting one month of synthetic rainfall\n");
    let month = ss_datagen::precipitation_month(8, 8, 32, 0, 1);
    let data_file = dir.join("month0.csv");
    std::fs::write(&data_file, csv::write_array(&month)).map_err(|e| e.to_string())?;
    run(&to_args(&[
        "ingest",
        &store_s,
        "--data",
        data_file.to_str().unwrap(),
    ]))?;

    println!("\n## appending a second month (the domain doubles)\n");
    let month1 = ss_datagen::precipitation_month(8, 8, 32, 1, 1);
    let data_file1 = dir.join("month1.csv");
    std::fs::write(&data_file1, csv::write_array(&month1)).map_err(|e| e.to_string())?;
    run(&to_args(&[
        "append",
        &store_s,
        "--extent",
        "32",
        "--data",
        data_file1.to_str().unwrap(),
    ]))?;

    println!("\n## querying\n");
    run(&to_args(&["stats", &store_s]))?;
    print!("total rainfall month 1: ");
    run(&to_args(&[
        "sum", &store_s, "--lo", "0,0,32", "--hi", "7,7,63",
    ]))?;
    print!("cell (2,3,40): ");
    run(&to_args(&["point", &store_s, "2,3,40"]))?;

    std::fs::remove_dir_all(&dir).ok();
    println!("\ndemo complete.");
    Ok(())
}

fn to_args(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ss_cli_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn full_cli_lifecycle() {
        let dir = tmp_dir("lifecycle");
        let store = dir.join("t.ws");
        let store_s = store.to_str().unwrap().to_string();
        // create
        run(&to_args(&[
            "create", &store_s, "--levels", "2,3", "--tiles", "1,1",
        ]))
        .unwrap();
        // ingest 4x8 values 0..32
        let data: Vec<String> = (0..4)
            .map(|r| {
                (0..8)
                    .map(|c| ((r * 8 + c) as f64).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let f = dir.join("data.csv");
        std::fs::write(&f, data.join("\n")).unwrap();
        run(&to_args(&[
            "ingest",
            &store_s,
            "--data",
            f.to_str().unwrap(),
        ]))
        .unwrap();
        // queries execute without error (values checked in library tests)
        run(&to_args(&["point", &store_s, "2,5"])).unwrap();
        run(&to_args(&["sum", &store_s, "--lo", "0,0", "--hi", "3,7"])).unwrap();
        run(&to_args(&["stats", &store_s])).unwrap();
        // update a 2x2 box
        let delta = dir.join("delta.csv");
        std::fs::write(&delta, "1,1\n1,1\n").unwrap();
        run(&to_args(&[
            "update",
            &store_s,
            "--at",
            "1,3",
            "--dims",
            "2,2",
            "--data",
            delta.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_ingest_matches_serial() {
        // Two identical stores, one ingested serially and one with
        // `--workers 4`: every cell must read back the same.
        let dir = tmp_dir("par_ingest");
        let data: Vec<String> = (0..16)
            .map(|r| {
                (0..16)
                    .map(|c| (((r * 37 + c * 11) % 100) as f64).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let f = dir.join("data.csv");
        std::fs::write(&f, data.join("\n")).unwrap();
        let mut stores = Vec::new();
        for (name, extra) in [("serial", &[][..]), ("par", &["--workers", "4"][..])] {
            let store = dir.join(format!("{name}.ws"));
            let store_s = store.to_str().unwrap().to_string();
            run(&to_args(&[
                "create", &store_s, "--levels", "4,4", "--tiles", "2,2",
            ]))
            .unwrap();
            let mut args = vec!["ingest", &store_s, "--data", f.to_str().unwrap()];
            args.extend_from_slice(extra);
            run(&to_args(&args)).unwrap();
            stores.push(store);
        }
        let mut serial = crate::wsfile::WsFile::open(&stores[0]).unwrap();
        let mut par = crate::wsfile::WsFile::open(&stores[1]).unwrap();
        for i in 0..16 {
            for j in 0..16 {
                let a = ss_query::point_standard(&mut serial.store, &serial.meta.levels, &[i, j]);
                let b = ss_query::point_standard(&mut par.store, &par.meta.levels, &[i, j]);
                assert!((a - b).abs() <= 1e-9, "cell ({i},{j}): {a} vs {b}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v3_ingest_roundtrips_and_refuses_append() {
        // Ingest the same data dense (v2) and sparse (--format v3 at
        // threshold 0): every cell must read back bit-identically, scrub
        // must pass, and append must be refused on the v3 store.
        let dir = tmp_dir("v3_ingest");
        // A few isolated spikes on a zero background: the transform's
        // non-zeros cluster in a handful of tiles, the sparse win case.
        let data: Vec<String> = (0..16)
            .map(|r| {
                (0..16)
                    .map(|c| if r == 3 && c == 5 { "3.5" } else { "0" }.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let f = dir.join("data.csv");
        std::fs::write(&f, data.join("\n")).unwrap();
        let mut stores = Vec::new();
        for (name, extra) in [
            ("dense", &[][..]),
            ("sparse", &["--format", "v3", "--threshold", "0"][..]),
        ] {
            let store = dir.join(format!("{name}.ws"));
            let store_s = store.to_str().unwrap().to_string();
            run(&to_args(&[
                "create", &store_s, "--levels", "4,4", "--tiles", "2,2",
            ]))
            .unwrap();
            let mut args = vec!["ingest", &store_s, "--data", f.to_str().unwrap()];
            args.extend_from_slice(extra);
            run(&to_args(&args)).unwrap();
            stores.push(store);
        }
        let mut dense = crate::wsfile::WsFile::open(&stores[0]).unwrap();
        let mut sparse = crate::wsfile::WsFile::open(&stores[1]).unwrap();
        assert!(!dense.sparse() && sparse.sparse());
        for i in 0..16 {
            for j in 0..16 {
                let a = ss_query::point_standard(&mut dense.store, &dense.meta.levels, &[i, j]);
                let b = ss_query::point_standard(&mut sparse.store, &sparse.meta.levels, &[i, j]);
                assert_eq!(a.to_bits(), b.to_bits(), "cell ({i},{j}): {a} vs {b}");
            }
        }
        // The sparse file is smaller on disk for this mostly-zero data.
        let dense_len = std::fs::metadata(&stores[0]).unwrap().len();
        let sparse_len = std::fs::metadata(&stores[1]).unwrap().len();
        assert!(sparse_len < dense_len, "{sparse_len} !< {dense_len}");
        drop((dense, sparse));
        let sparse_s = stores[1].to_str().unwrap().to_string();
        run(&to_args(&["scrub", &sparse_s])).unwrap();
        run(&to_args(&["stats", &sparse_s])).unwrap();
        run(&to_args(&["point", &sparse_s, "2,5"])).unwrap();
        // Append is a dense-only operation (docs/FORMAT.md §8.6).
        let chunk = dir.join("chunk.csv");
        std::fs::write(&chunk, "1,1,1,1,1,1,1,1\n".repeat(16)).unwrap();
        let err = run(&to_args(&[
            "append",
            &sparse_s,
            "--extent",
            "8",
            "--data",
            chunk.to_str().unwrap(),
        ]))
        .expect_err("append on v3 must fail");
        assert!(err.msg.contains("sparse v3"), "got: {}", err.msg);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v3_lossy_flags_are_validated() {
        let args = |v: &[&str]| to_args(v);
        // --threshold without --format v3
        let dir = tmp_dir("v3_flags");
        let store = dir.join("f.ws");
        let store_s = store.to_str().unwrap().to_string();
        run(&args(&["create", &store_s, "--levels", "2,2"])).unwrap();
        let f = dir.join("d.csv");
        std::fs::write(&f, "1,0,0,0\n0,0,0,0\n0,0,0,0\n0,0,0,1\n").unwrap();
        for bad in [
            vec![
                "ingest",
                &store_s,
                "--data",
                f.to_str().unwrap(),
                "--threshold",
                "0.1",
            ],
            vec![
                "ingest",
                &store_s,
                "--data",
                f.to_str().unwrap(),
                "--format",
                "v3",
                "--threshold",
                "0.1",
                "--topk",
                "2",
            ],
            vec![
                "ingest",
                &store_s,
                "--data",
                f.to_str().unwrap(),
                "--format",
                "v9",
            ],
        ] {
            assert!(run(&to_args(&bad)).is_err(), "accepted: {bad:?}");
        }
        // A lossy ingest succeeds and the store still scrubs clean.
        run(&args(&[
            "ingest",
            &store_s,
            "--data",
            f.to_str().unwrap(),
            "--format",
            "v3",
            "--topk",
            "1",
        ]))
        .unwrap();
        run(&args(&["scrub", &store_s])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_through_cli_expands_domain() {
        let dir = tmp_dir("append");
        let store = dir.join("a.ws");
        let store_s = store.to_str().unwrap().to_string();
        run(&to_args(&[
            "create", &store_s, "--levels", "1,2", "--axis", "1",
        ]))
        .unwrap();
        let chunk = dir.join("c.csv");
        std::fs::write(&chunk, "1,2,3,4\n5,6,7,8\n").unwrap();
        // Two appends of extent 4: second one doubles axis 1 from 4 to 8.
        run(&to_args(&[
            "append",
            &store_s,
            "--extent",
            "4",
            "--data",
            chunk.to_str().unwrap(),
        ]))
        .unwrap();
        run(&to_args(&[
            "append",
            &store_s,
            "--extent",
            "4",
            "--data",
            chunk.to_str().unwrap(),
        ]))
        .unwrap();
        let meta = crate::wsfile::WsFile::open(&store).unwrap().meta;
        assert_eq!(meta.levels, vec![1, 3]);
        assert_eq!(meta.filled, 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scrub_is_clean_then_detects_corruption_with_exit_2() {
        let dir = tmp_dir("scrub");
        let store = dir.join("s.ws");
        let store_s = store.to_str().unwrap().to_string();
        run(&to_args(&[
            "create", &store_s, "--levels", "3,3", "--tiles", "1,1",
        ]))
        .unwrap();
        let data: Vec<String> = (0..8)
            .map(|r| {
                (0..8)
                    .map(|c| ((r * 3 + c) as f64).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let f = dir.join("d.csv");
        std::fs::write(&f, data.join("\n")).unwrap();
        run(&to_args(&[
            "ingest",
            &store_s,
            "--data",
            f.to_str().unwrap(),
        ]))
        .unwrap();
        run(&to_args(&["scrub", &store_s])).unwrap();
        // Rot one bit of the blocks file: scrub must fail with exit code 2
        // and without dumping the usage text.
        let mut bytes = std::fs::read(&store).unwrap();
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0x08;
        std::fs::write(&store, &bytes).unwrap();
        let err = run(&to_args(&["scrub", &store_s])).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.msg);
        assert!(!err.usage);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_under_injected_faults_matches_clean_ingest() {
        // Two identical stores, one ingested cleanly and one under 20%
        // injected read faults absorbed by retries: same contents, and the
        // retry/fault counters must land in the metrics snapshot.
        let dir = tmp_dir("faulty_ingest");
        let data: Vec<String> = (0..16)
            .map(|r| {
                (0..16)
                    .map(|c| (((r * 13 + c * 7) % 50) as f64).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let f = dir.join("d.csv");
        std::fs::write(&f, data.join("\n")).unwrap();
        let snap = dir.join("metrics.json");
        for (name, extra) in [
            ("clean", &[][..]),
            (
                "faulty",
                &[
                    "--fault-read",
                    "0.2",
                    "--fault-seed",
                    "11",
                    "--retries",
                    "12",
                    "--metrics-out",
                    "SNAP",
                ][..],
            ),
        ] {
            let store = dir.join(format!("{name}.ws"));
            let store_s = store.to_str().unwrap().to_string();
            run(&to_args(&[
                "create", &store_s, "--levels", "4,4", "--tiles", "2,2",
            ]))
            .unwrap();
            let mut args = vec!["ingest", &store_s, "--data", f.to_str().unwrap()];
            for a in extra {
                args.push(if *a == "SNAP" {
                    snap.to_str().unwrap()
                } else {
                    a
                });
            }
            run(&to_args(&args)).unwrap();
            run(&to_args(&["scrub", &store_s])).unwrap();
        }
        let mut clean = crate::wsfile::WsFile::open(&dir.join("clean.ws")).unwrap();
        let mut faulty = crate::wsfile::WsFile::open(&dir.join("faulty.ws")).unwrap();
        for i in 0..16 {
            for j in 0..16 {
                let a = ss_query::point_standard(&mut clean.store, &clean.meta.levels, &[i, j]);
                let b = ss_query::point_standard(&mut faulty.store, &faulty.meta.levels, &[i, j]);
                assert!((a - b).abs() <= 1e-9, "cell ({i},{j}): {a} vs {b}");
            }
        }
        let snapshot = std::fs::read_to_string(&snap).unwrap();
        assert!(
            snapshot.contains("storage.faults_injected_read"),
            "fault counter missing from snapshot"
        );
        assert!(
            snapshot.contains("storage.retries"),
            "retry counter missing from snapshot"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_query_through_cli() {
        // Start `serve` on an ephemeral port with a request budget, run
        // `query` clients against it, check the answers are bit-identical
        // to the serial batch path, and watch the server exit cleanly once
        // the budget is spent.
        let dir = tmp_dir("serve");
        let store = dir.join("s.ws");
        let store_s = store.to_str().unwrap().to_string();
        run(&to_args(&[
            "create", &store_s, "--levels", "4,4", "--tiles", "2,2",
        ]))
        .unwrap();
        let data: Vec<String> = (0..16)
            .map(|r| {
                (0..16)
                    .map(|c| (((r * 29 + c * 17) % 41) as f64 / 4.0).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let f = dir.join("d.csv");
        std::fs::write(&f, data.join("\n")).unwrap();
        run(&to_args(&[
            "ingest",
            &store_s,
            "--data",
            f.to_str().unwrap(),
        ]))
        .unwrap();
        let addr_file = dir.join("addr.txt");
        let addr_file_s = addr_file.to_str().unwrap().to_string();
        let points = [[0usize, 0], [7, 13], [15, 15], [3, 9]];
        // 4 point queries + 1 range sum = a budget of 5 responses.
        let serve_store = store_s.clone();
        let server = std::thread::spawn(move || {
            run(&to_args(&[
                "serve",
                &serve_store,
                "--port",
                "0",
                "--workers",
                "2",
                "--requests",
                "5",
                "--addr-file",
                &addr_file_s,
            ]))
        });
        let addr = loop {
            match std::fs::read_to_string(&addr_file) {
                Ok(a) if !a.is_empty() => break a,
                _ => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        };
        let mut ws = crate::wsfile::WsFile::open(&store).unwrap();
        let out = dir.join("answer.txt");
        let out_s = out.to_str().unwrap().to_string();
        for pos in &points {
            let at = format!("{},{}", pos[0], pos[1]);
            run(&to_args(&["query", &addr, "--at", &at, "--out", &out_s])).unwrap();
            let got: f64 = std::fs::read_to_string(&out)
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let want = ss_query::batch_points(&mut ws.store, &ws.meta.levels, &[pos.to_vec()])[0];
            assert_eq!(got.to_bits(), want.to_bits(), "point {pos:?}");
        }
        run(&to_args(&[
            "query", &addr, "--lo", "1,2", "--hi", "12,14", "--out", &out_s,
        ]))
        .unwrap();
        let got: f64 = std::fs::read_to_string(&out)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let want = ss_query::batch_range_sums(
            &mut ws.store,
            &ws.meta.levels,
            &[(vec![1, 2], vec![12, 14])],
        )[0];
        assert_eq!(got.to_bits(), want.to_bits(), "range sum");
        // The budget is now spent: the serve command returns Ok on its own.
        server.join().unwrap().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn routed_serve_through_cli_matches_serial_answers() {
        // End-to-end router path through the CLI: `shard-split` computes
        // balanced bounds, two in-process shard servers hold the store,
        // `serve --router --bounds …` scatter-gathers over them, and
        // `query` answers must be bit-identical to the serial batch path.
        let dir = tmp_dir("router_serve");
        let store = dir.join("s.ws");
        let store_s = store.to_str().unwrap().to_string();
        run(&to_args(&[
            "create", &store_s, "--levels", "4,4", "--tiles", "2,2",
        ]))
        .unwrap();
        let data: Vec<String> = (0..16)
            .map(|r| {
                (0..16)
                    .map(|c| (((r * 13 + c * 23) % 37) as f64 / 8.0).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let f = dir.join("d.csv");
        std::fs::write(&f, data.join("\n")).unwrap();
        run(&to_args(&[
            "ingest",
            &store_s,
            "--data",
            f.to_str().unwrap(),
        ]))
        .unwrap();
        // Offline rebalancer: bounds must be a full contiguous partition.
        let bounds_file = dir.join("bounds.txt");
        let bounds_file_s = bounds_file.to_str().unwrap().to_string();
        run(&to_args(&[
            "shard-split",
            &store_s,
            "--shards",
            "2",
            "--out",
            &bounds_file_s,
        ]))
        .unwrap();
        let bounds = std::fs::read_to_string(&bounds_file).unwrap();
        let parsed: Vec<usize> = bounds
            .trim()
            .split(',')
            .map(|b| b.parse().unwrap())
            .collect();
        assert_eq!(parsed.first(), Some(&0));
        assert_eq!(parsed.len(), 3, "2 shards need 3 bounds: {bounds}");
        // Two in-process shard servers, each holding the full store file
        // (the router only asks a shard for tiles in its owned range).
        let mut shard_servers = Vec::new();
        let mut shard_addrs = Vec::new();
        for _ in 0..2 {
            let ws = crate::wsfile::WsFile::open(&store).unwrap();
            let stats = ws.stats.clone();
            let levels = ws.meta.levels.clone();
            let (map, blocks) = ws.store.into_parts();
            let shared = ss_storage::SharedCoeffStore::new(map, blocks, 64, 2, stats);
            let server = ss_serve::QueryServer::bind(
                "127.0.0.1:0",
                shared,
                levels,
                ss_serve::ServeConfig {
                    workers: 2,
                    batch_max: 16,
                    max_requests: None,
                    slow_ns: None,
                },
            )
            .unwrap();
            shard_addrs.push(server.local_addr().to_string());
            shard_servers.push(server);
        }
        let addr_file = dir.join("addr.txt");
        let addr_file_s = addr_file.to_str().unwrap().to_string();
        let points = [[0usize, 0], [7, 13], [15, 15], [3, 9]];
        // 4 points + 1 range sum = a budget of 5 routed responses.
        let serve_store = store_s.clone();
        let shards_arg = shard_addrs.join(",");
        let bounds_arg = bounds.trim().to_string();
        let router = std::thread::spawn(move || {
            run(&to_args(&[
                "serve",
                &serve_store,
                "--router",
                "--shards",
                &shards_arg,
                "--bounds",
                &bounds_arg,
                "--port",
                "0",
                "--workers",
                "2",
                "--requests",
                "5",
                "--addr-file",
                &addr_file_s,
            ]))
        });
        let addr = loop {
            match std::fs::read_to_string(&addr_file) {
                Ok(a) if !a.is_empty() => break a,
                _ => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        };
        let mut ws = crate::wsfile::WsFile::open(&store).unwrap();
        let out = dir.join("answer.txt");
        let out_s = out.to_str().unwrap().to_string();
        for pos in &points {
            let at = format!("{},{}", pos[0], pos[1]);
            run(&to_args(&["query", &addr, "--at", &at, "--out", &out_s])).unwrap();
            let got: f64 = std::fs::read_to_string(&out)
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let want = ss_query::batch_points(&mut ws.store, &ws.meta.levels, &[pos.to_vec()])[0];
            assert_eq!(got.to_bits(), want.to_bits(), "routed point {pos:?}");
        }
        run(&to_args(&[
            "query", &addr, "--lo", "2,1", "--hi", "13,11", "--out", &out_s,
        ]))
        .unwrap();
        let got: f64 = std::fs::read_to_string(&out)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let want = ss_query::batch_range_sums(
            &mut ws.store,
            &ws.meta.levels,
            &[(vec![2, 1], vec![13, 11])],
        )[0];
        assert_eq!(got.to_bits(), want.to_bits(), "routed range sum");
        router.join().unwrap().unwrap();
        for server in shard_servers {
            server.shutdown();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writable_serve_commits_durably_and_wal_replay_recovers_a_crash() {
        let dir = tmp_dir("writable_serve");
        let store = dir.join("s.ws");
        let store_s = store.to_str().unwrap().to_string();
        run(&to_args(&[
            "create", &store_s, "--levels", "4,4", "--tiles", "2,2",
        ]))
        .unwrap();
        let wal = dir.join("s.wal");
        let wal_s = wal.to_str().unwrap().to_string();
        let addr_file = dir.join("addr.txt");
        let addr_file_s = addr_file.to_str().unwrap().to_string();

        // Budget of 4: point, update, commit, point.
        let serve_store = store_s.clone();
        let serve_wal = wal_s.clone();
        let server = std::thread::spawn(move || {
            run(&to_args(&[
                "serve",
                &serve_store,
                "--writable",
                "--wal",
                &serve_wal,
                "--port",
                "0",
                "--workers",
                "2",
                "--requests",
                "4",
                "--addr-file",
                &addr_file_s,
            ]))
        });
        let addr = loop {
            match std::fs::read_to_string(&addr_file) {
                Ok(a) if !a.is_empty() => break a,
                _ => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        };
        let mut client = ss_serve::Client::connect(addr.trim()).unwrap();
        assert_eq!(client.point(&[2, 3]).unwrap(), 0.0); // fresh store
        client.update(&[2, 3], &[1, 2], &[4.5, -1.25]).unwrap();
        assert_eq!(client.commit().unwrap(), 1.0);
        assert_eq!(client.point(&[2, 3]).unwrap(), 4.5); // read-your-writes
        server.join().unwrap().unwrap();
        // Clean shutdown checkpointed the commit into the store file and
        // truncated the WAL to its 8-byte magic.
        assert_eq!(std::fs::metadata(&wal).unwrap().len(), 8);
        let mut ws = crate::wsfile::WsFile::open(&store).unwrap();
        let a = ss_query::point_standard(&mut ws.store, &ws.meta.levels, &[2, 3]);
        let b = ss_query::point_standard(&mut ws.store, &ws.meta.levels, &[2, 4]);
        assert!((a - 4.5).abs() < 1e-9, "{a}");
        assert!((b + 1.25).abs() < 1e-9, "{b}");
        drop(ws);

        // Crash scenario: commit an epoch through the snapshot store and
        // drop it with no checkpoint — the commit exists only in the WAL.
        {
            let ws = crate::wsfile::WsFile::open(&store).unwrap();
            let stats = ws.stats.clone();
            let levels = ws.meta.levels.clone();
            use ss_core::TilingMap as _;
            let (map, blocks) = ws.store.into_parts();
            let shared = ss_storage::SharedCoeffStore::new(map, blocks, 64, 2, stats);
            let (w, recs, _) = ss_maintain::Wal::open(&wal).unwrap();
            assert!(recs.is_empty());
            let snap = ss_maintain::SnapshotCoeffStore::new(shared, Some(w), 1);
            let mut buf =
                ss_maintain::DeltaBuffer::new(snap.map().block_capacity(), Default::default());
            buf.begin_box();
            let delta = ss_array::NdArray::from_vec(ss_array::Shape::new(&[1, 1]), vec![2.0]);
            ss_transform::for_each_box_delta_standard(&levels, &[7, 7], &delta, |idx, d| {
                buf.add_at(snap.map(), idx, d);
            });
            snap.commit(&mut buf).unwrap();
        } // dropped without checkpoint = crash after the WAL fsync
        let mut ws = crate::wsfile::WsFile::open(&store).unwrap();
        let lost = ss_query::point_standard(&mut ws.store, &ws.meta.levels, &[7, 7]);
        assert!(lost.abs() < 1e-9, "commit must not be in the store yet");
        drop(ws);

        run(&to_args(&["wal-replay", &store_s, "--wal", &wal_s])).unwrap();
        assert_eq!(std::fs::metadata(&wal).unwrap().len(), 8);
        let mut ws = crate::wsfile::WsFile::open(&store).unwrap();
        let got = ss_query::point_standard(&mut ws.store, &ws.meta.levels, &[7, 7]);
        assert!((got - 2.0).abs() < 1e-9, "{got}");
        // Earlier folded state is untouched by the replay.
        let a = ss_query::point_standard(&mut ws.store, &ws.meta.levels, &[2, 3]);
        assert!((a - 4.5).abs() < 1e-9, "{a}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_serve_exports_a_followable_log_and_trace_dump_reads_it() {
        // A writable tracing server: a traced CLI query, then a traced
        // update+commit through the client. The ss-trace-v1 log must
        // parse line by line, contain the query's request span under its
        // explicit trace id, and tag the commit with epoch 1. trace-dump
        // must summarise the same file and convert it for chrome://tracing.
        // Trace ids are deliberately large: fresh server-allocated ids
        // count up from 1, so concurrent tests can never collide with these.
        const QUERY_TRACE: u64 = 700_001;
        const UPDATE_TRACE: u64 = 900_002;
        let dir = tmp_dir("traced_serve");
        let store = dir.join("s.ws");
        let store_s = store.to_str().unwrap().to_string();
        run(&to_args(&[
            "create", &store_s, "--levels", "3,3", "--tiles", "1,1",
        ]))
        .unwrap();
        let data = write_cube_csv(&dir, "d.csv", 8, 8);
        run(&to_args(&["ingest", &store_s, "--data", &data])).unwrap();
        let trace = dir.join("trace.jsonl");
        let trace_s = trace.to_str().unwrap().to_string();
        let addr_file = dir.join("addr.txt");
        let addr_file_s = addr_file.to_str().unwrap().to_string();
        // Budget of 5: traced point, baseline point, update, commit,
        // read-your-writes point.
        let serve_store = store_s.clone();
        let serve_trace = trace_s.clone();
        let server = std::thread::spawn(move || {
            run(&to_args(&[
                "serve",
                &serve_store,
                "--writable",
                "--port",
                "0",
                "--workers",
                "2",
                "--requests",
                "5",
                "--trace-out",
                &serve_trace,
                "--slow-ms",
                "60000",
                "--addr-file",
                &addr_file_s,
            ]))
        });
        let addr = loop {
            match std::fs::read_to_string(&addr_file) {
                Ok(a) if !a.is_empty() => break a,
                _ => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        };
        run(&to_args(&[
            "query",
            &addr,
            "--at",
            "2,3",
            "--trace",
            &QUERY_TRACE.to_string(),
        ]))
        .unwrap();
        let mut client = ss_serve::Client::connect(addr.trim()).unwrap();
        client.set_trace(Some(UPDATE_TRACE));
        let base = client.point(&[1, 1]).unwrap();
        client.update(&[1, 1], &[1, 1], &[2.5]).unwrap();
        assert_eq!(client.commit().unwrap(), 1.0);
        let after = client.point(&[1, 1]).unwrap();
        assert!((after - base - 2.5).abs() < 1e-9, "{base} -> {after}");
        drop(client);
        server.join().unwrap().unwrap();

        // Every line is valid ss-trace-v1 JSON.
        let text = std::fs::read_to_string(&trace).unwrap();
        let lines: Vec<ss_obs::json::Value> = text
            .lines()
            .map(|l| ss_obs::json::parse(l).unwrap())
            .collect();
        assert!(!lines.is_empty());
        for l in &lines {
            assert_eq!(
                l.get("schema").unwrap().as_str(),
                Some(ss_obs::trace::TRACE_SCHEMA)
            );
        }
        let of_trace = |t: u64| -> Vec<&ss_obs::json::Value> {
            lines
                .iter()
                .filter(|l| l.get("trace").and_then(|x| x.as_u64()) == Some(t))
                .collect()
        };
        // The CLI query ran under its explicit id with a matched
        // request span and at least one tile fetch.
        let q = of_trace(QUERY_TRACE);
        let named = |evs: &[&ss_obs::json::Value], ev: &str, name: &str| {
            evs.iter().any(|l| {
                l.get("ev").and_then(|x| x.as_str()) == Some(ev)
                    && l.get("name").and_then(|x| x.as_str()) == Some(name)
            })
        };
        assert!(named(&q, "span_begin", "serve.request"), "{text}");
        assert!(named(&q, "span_end", "serve.request"), "{text}");
        assert!(
            q.iter()
                .any(|l| l.get("ev").and_then(|x| x.as_str()) == Some("tile_fetch")),
            "{text}"
        );
        // The update trace carries the commit span; the commit pipeline
        // tagged epoch 1 (pipeline events run outside any request trace).
        let u = of_trace(UPDATE_TRACE);
        assert!(named(&u, "span_end", "serve.commit"), "{text}");
        assert!(
            lines.iter().any(|l| {
                l.get("ev").and_then(|x| x.as_str()) == Some("commit")
                    && l.get("epoch").and_then(|x| x.as_u64()) == Some(1)
            }),
            "{text}"
        );
        // No slow-request events: the 60 s threshold is unreachable here.
        assert!(!text.contains("slow_request"), "{text}");

        // trace-dump summarises the file and emits a Chrome conversion.
        run(&to_args(&["trace-dump", &trace_s])).unwrap();
        let chrome = dir.join("chrome.json");
        let chrome_s = chrome.to_str().unwrap().to_string();
        run(&to_args(&["trace-dump", &trace_s, "--chrome", &chrome_s])).unwrap();
        let chrome_doc = ss_obs::json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        let slices = chrome_doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!slices.is_empty());
        // A non-trace file is rejected with a line number, not a panic.
        let junk = dir.join("junk.txt");
        std::fs::write(&junk, "{\"schema\":\"bogus\"}\n").unwrap();
        assert!(run(&to_args(&["trace-dump", junk.to_str().unwrap()])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slow_request_log_fires_only_above_threshold() {
        let dir = tmp_dir("slow_serve");
        let store = dir.join("s.ws");
        let store_s = store.to_str().unwrap().to_string();
        run(&to_args(&[
            "create", &store_s, "--levels", "2,2", "--tiles", "1,1",
        ]))
        .unwrap();
        let slow = ss_obs::global().counter("serve.requests_slow");
        // Threshold 0 ms marks every request slow; a 60 s threshold none.
        // (Concurrent tests run their servers without --slow-ms, so the
        // counter moves only through these two.)
        for (ms, expect_slow) in [("60000", false), ("0", true)] {
            let before = slow.get();
            let addr_file = dir.join(format!("addr_{ms}.txt"));
            let addr_file_s = addr_file.to_str().unwrap().to_string();
            let serve_store = store_s.clone();
            let ms_owned = ms.to_string();
            let server = std::thread::spawn(move || {
                run(&to_args(&[
                    "serve",
                    &serve_store,
                    "--port",
                    "0",
                    "--requests",
                    "2",
                    "--slow-ms",
                    &ms_owned,
                    "--addr-file",
                    &addr_file_s,
                ]))
            });
            let addr = loop {
                match std::fs::read_to_string(&addr_file) {
                    Ok(a) if !a.is_empty() => break a,
                    _ => std::thread::sleep(std::time::Duration::from_millis(5)),
                }
            };
            let mut client = ss_serve::Client::connect(addr.trim()).unwrap();
            client.point(&[0, 0]).unwrap();
            client.point(&[1, 1]).unwrap();
            drop(client);
            server.join().unwrap().unwrap();
            let fired = slow.get() - before;
            if expect_slow {
                assert!(
                    fired >= 2,
                    "threshold 0 must mark every request, got {fired}"
                );
            } else {
                assert_eq!(fired, 0, "60 s threshold must mark nothing");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_watch_polls_a_metrics_endpoint() {
        // A live endpoint with windowed percentiles; --iterations bounds
        // the loop so the test terminates.
        ss_obs::global().record_ns("watch_test.ns", 1234);
        let window =
            ss_obs::HistogramWindow::new(ss_obs::global(), std::time::Duration::from_millis(10), 3);
        let server =
            ss_obs::MetricsServer::bind_windowed("127.0.0.1:0", ss_obs::global(), window).unwrap();
        let addr = server.local_addr().to_string();
        run(&to_args(&[
            "stats",
            "--watch",
            &addr,
            "--iterations",
            "2",
            "--interval-ms",
            "20",
        ]))
        .unwrap();
        // An unreachable endpoint is a clean error, not a hang or panic.
        assert!(run(&to_args(&[
            "stats",
            "--watch",
            "127.0.0.1:1",
            "--iterations",
            "1",
        ]))
        .is_err());
        std::fs::remove_dir_all(tmp_dir("watch_unused")).ok();
    }

    /// Writes a CSV cube of `rows x cols` pseudorandom values and returns
    /// the file path.
    fn write_cube_csv(dir: &std::path::Path, name: &str, rows: usize, cols: usize) -> String {
        let data: Vec<String> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| (((r * 31 + c * 7) % 23) as f64 / 3.0).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let f = dir.join(name);
        std::fs::write(&f, data.join("\n")).unwrap();
        f.to_str().unwrap().to_string()
    }

    #[test]
    fn batched_update_matches_serial_updates() {
        // One store updated box-by-box, one with `update --batch`, one with
        // `--batch --workers 3`: all cells must read back bit-identically.
        let dir = tmp_dir("batch_update");
        let data = write_cube_csv(&dir, "base.csv", 16, 16);
        // Three overlapping delta boxes.
        let d1 = dir.join("d1.csv");
        std::fs::write(&d1, "1,2,3\n4,5,6\n").unwrap();
        let d2 = dir.join("d2.csv");
        std::fs::write(&d2, "-1,-1\n-1,-1\n-1,-1\n").unwrap();
        let d3 = dir.join("d3.csv");
        std::fs::write(&d3, "0.5,0.25\n").unwrap();
        let boxes = [
            ("2,3", "2,3", "d1.csv"),
            ("3,4", "3,2", "d2.csv"),
            ("14,0", "1,2", "d3.csv"),
        ];
        let batch = dir.join("boxes.txt");
        let batch_text: String = boxes
            .iter()
            .map(|(at, dims, f)| format!("{at};{dims};{f}\n"))
            .collect();
        std::fs::write(&batch, format!("# three boxes\n\n{batch_text}")).unwrap();
        let mut stores = Vec::new();
        for (name, batched) in [
            ("serial", None),
            ("batch", Some(&[][..])),
            ("batch_par", Some(&["--workers", "3"][..])),
            ("batch_merged", Some(&["--mode", "merged"][..])),
        ] {
            let store = dir.join(format!("{name}.ws"));
            let store_s = store.to_str().unwrap().to_string();
            run(&to_args(&[
                "create", &store_s, "--levels", "4,4", "--tiles", "2,2",
            ]))
            .unwrap();
            run(&to_args(&["ingest", &store_s, "--data", &data])).unwrap();
            match batched {
                None => {
                    for (at, dims, f) in &boxes {
                        let df = dir.join(f);
                        run(&to_args(&[
                            "update",
                            &store_s,
                            "--at",
                            at,
                            "--dims",
                            dims,
                            "--data",
                            df.to_str().unwrap(),
                        ]))
                        .unwrap();
                    }
                }
                Some(extra) => {
                    let mut args = vec!["update", &store_s, "--batch", batch.to_str().unwrap()];
                    args.extend_from_slice(extra);
                    run(&to_args(&args)).unwrap();
                }
            }
            stores.push(store);
        }
        let mut serial = crate::wsfile::WsFile::open(&stores[0]).unwrap();
        for (i, name) in ["batch", "batch_par"].iter().enumerate() {
            let mut other = crate::wsfile::WsFile::open(&stores[i + 1]).unwrap();
            for r in 0..16usize {
                for c in 0..16usize {
                    let a =
                        ss_query::point_standard(&mut serial.store, &serial.meta.levels, &[r, c]);
                    let b = ss_query::point_standard(&mut other.store, &other.meta.levels, &[r, c]);
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{name} cell ({r},{c}): {a} vs {b}"
                    );
                }
            }
        }
        // Merged mode: equal within rounding only.
        let mut merged = crate::wsfile::WsFile::open(&stores[3]).unwrap();
        for r in 0..16usize {
            for c in 0..16usize {
                let a = ss_query::point_standard(&mut serial.store, &serial.meta.levels, &[r, c]);
                let b = ss_query::point_standard(&mut merged.store, &merged.meta.levels, &[r, c]);
                assert!((a - b).abs() < 1e-9, "merged cell ({r},{c}): {a} vs {b}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coalesced_ingest_matches_plain_ingest() {
        let dir = tmp_dir("coalesce_ingest");
        let data = write_cube_csv(&dir, "d.csv", 16, 16);
        let mut stores = Vec::new();
        for (name, extra) in [
            ("plain", &[][..]),
            ("coalesced", &["--coalesce", "4"][..]),
            ("one_flush", &["--coalesce", "0"][..]),
        ] {
            let store = dir.join(format!("{name}.ws"));
            let store_s = store.to_str().unwrap().to_string();
            run(&to_args(&[
                "create", &store_s, "--levels", "4,4", "--tiles", "2,2",
            ]))
            .unwrap();
            let mut args = vec!["ingest", &store_s, "--data", &data];
            args.extend_from_slice(extra);
            run(&to_args(&args)).unwrap();
            run(&to_args(&["scrub", &store_s])).unwrap();
            stores.push(store);
        }
        let mut plain = crate::wsfile::WsFile::open(&stores[0]).unwrap();
        for other in &stores[1..] {
            let mut ws = crate::wsfile::WsFile::open(other).unwrap();
            for r in 0..16usize {
                for c in 0..16usize {
                    let a = ss_query::point_standard(&mut plain.store, &plain.meta.levels, &[r, c]);
                    let b = ss_query::point_standard(&mut ws.store, &ws.meta.levels, &[r, c]);
                    assert_eq!(a.to_bits(), b.to_bits(), "cell ({r},{c}): {a} vs {b}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coalesce_rejects_workers_and_faults() {
        let dir = tmp_dir("coalesce_reject");
        let data = write_cube_csv(&dir, "d.csv", 4, 4);
        let store = dir.join("s.ws");
        let store_s = store.to_str().unwrap().to_string();
        run(&to_args(&["create", &store_s, "--levels", "2,2"])).unwrap();
        assert!(run(&to_args(&[
            "ingest",
            &store_s,
            "--data",
            &data,
            "--coalesce",
            "2",
            "--workers",
            "2",
        ]))
        .is_err());
        assert!(run(&to_args(&[
            "ingest",
            &store_s,
            "--data",
            &data,
            "--coalesce",
            "2",
            "--fault-read",
            "0.1",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&to_args(&["bogus"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn synopsis_roundtrip_through_cli() {
        let dir = tmp_dir("synopsis");
        let store = dir.join("s.ws");
        let store_s = store.to_str().unwrap().to_string();
        run(&to_args(&[
            "create", &store_s, "--levels", "3,3", "--tiles", "1,1",
        ]))
        .unwrap();
        let data: Vec<String> = (0..8)
            .map(|r| {
                (0..8)
                    .map(|c| ((r + c) as f64).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let f = dir.join("data.csv");
        std::fs::write(&f, data.join("\n")).unwrap();
        run(&to_args(&[
            "ingest",
            &store_s,
            "--data",
            f.to_str().unwrap(),
        ]))
        .unwrap();
        let syn = dir.join("syn.bin");
        run(&to_args(&[
            "synopsis",
            &store_s,
            "--k",
            "64",
            "--out",
            syn.to_str().unwrap(),
        ]))
        .unwrap();
        run(&to_args(&["asksyn", syn.to_str().unwrap(), "--at", "2,3"])).unwrap();
        run(&to_args(&[
            "asksyn",
            syn.to_str().unwrap(),
            "--lo",
            "0,0",
            "--hi",
            "7,7",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_command() {
        let dir = tmp_dir("stream");
        let f = dir.join("v.csv");
        let values: Vec<String> = (0..256).map(|i| (i % 17).to_string()).collect();
        std::fs::write(&f, values.join("\n")).unwrap();
        run(&to_args(&[
            "stream",
            "--data",
            f.to_str().unwrap(),
            "--k",
            "8",
            "--buffer",
            "16",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
