//! Minimal flag parsing — `--key value` pairs plus positionals, no
//! external dependencies.

use std::collections::HashMap;

/// Parsed command-line: positional arguments and `--key value` flags.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses raw arguments (everything after the subcommand name). A
    /// `--flag` followed by another `--flag` (or nothing) is a bare
    /// boolean switch, stored with an empty value and queried via
    /// [`Args::flag_set`]; value-taking flags that are left bare fail
    /// later when their value is parsed.
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let arg = &raw[i];
            i += 1;
            if let Some(key) = arg.strip_prefix("--") {
                let value = match raw.get(i) {
                    Some(next) if !next.starts_with("--") => {
                        i += 1;
                        next.clone()
                    }
                    _ => String::new(),
                };
                if out.flags.insert(key.to_string(), value).is_some() {
                    return Err(format!("duplicate flag --{key}"));
                }
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn pos(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing argument: {what}"))
    }

    /// Number of positional arguments.
    pub fn pos_len(&self) -> usize {
        self.positional.len()
    }

    /// A required flag value.
    pub fn flag(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing flag: --{key}"))
    }

    /// An optional flag value.
    pub fn flag_opt(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// True when the flag was given at all (with or without a value).
    pub fn flag_set(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

/// Parses `a,b,c` into integers.
pub fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("not a number: {p}"))
        })
        .collect()
}

/// Parses `a,b,c` into `u32`s.
pub fn parse_list_u32(s: &str) -> Result<Vec<u32>, String> {
    parse_list(s).map(|v| v.into_iter().map(|x| x as u32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&raw(&["store.ws", "--levels", "3,3", "--axis", "1"])).unwrap();
        assert_eq!(a.pos(0, "store").unwrap(), "store.ws");
        assert_eq!(a.flag("levels").unwrap(), "3,3");
        assert_eq!(a.flag_opt("missing"), None);
        assert_eq!(a.pos_len(), 1);
    }

    #[test]
    fn bare_flags_are_boolean_switches_and_duplicates_rejected() {
        let a = Args::parse(&raw(&["--writable", "--port", "0"])).unwrap();
        assert!(a.flag_set("writable"));
        assert_eq!(a.flag_opt("writable"), Some(""));
        assert_eq!(a.flag_opt("port"), Some("0"));
        assert!(!a.flag_set("absent"));
        // A value-taking flag left bare fails when its value is used.
        let a = Args::parse(&raw(&["--k"])).unwrap();
        assert_eq!(a.flag("k").unwrap(), "");
        assert!(Args::parse(&raw(&["--k", "1", "--k", "2"])).is_err());
    }

    #[test]
    fn list_parsing() {
        assert_eq!(parse_list("1, 2,3").unwrap(), vec![1, 2, 3]);
        assert!(parse_list("1,x").is_err());
        assert_eq!(parse_list_u32("4,5").unwrap(), vec![4u32, 5]);
    }
}
