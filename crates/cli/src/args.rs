//! Minimal flag parsing — `--key value` pairs plus positionals, no
//! external dependencies.

use std::collections::HashMap;

/// Parsed command-line: positional arguments and `--key value` flags.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses raw arguments (everything after the subcommand name).
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                if out.flags.insert(key.to_string(), value.clone()).is_some() {
                    return Err(format!("duplicate flag --{key}"));
                }
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn pos(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing argument: {what}"))
    }

    /// Number of positional arguments.
    pub fn pos_len(&self) -> usize {
        self.positional.len()
    }

    /// A required flag value.
    pub fn flag(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing flag: --{key}"))
    }

    /// An optional flag value.
    pub fn flag_opt(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }
}

/// Parses `a,b,c` into integers.
pub fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("not a number: {p}"))
        })
        .collect()
}

/// Parses `a,b,c` into `u32`s.
pub fn parse_list_u32(s: &str) -> Result<Vec<u32>, String> {
    parse_list(s).map(|v| v.into_iter().map(|x| x as u32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&raw(&["store.ws", "--levels", "3,3", "--axis", "1"])).unwrap();
        assert_eq!(a.pos(0, "store").unwrap(), "store.ws");
        assert_eq!(a.flag("levels").unwrap(), "3,3");
        assert_eq!(a.flag_opt("missing"), None);
        assert_eq!(a.pos_len(), 1);
    }

    #[test]
    fn rejects_missing_value_and_duplicates() {
        assert!(Args::parse(&raw(&["--k"])).is_err());
        assert!(Args::parse(&raw(&["--k", "1", "--k", "2"])).is_err());
    }

    #[test]
    fn list_parsing() {
        assert_eq!(parse_list("1, 2,3").unwrap(), vec![1, 2, 3]);
        assert!(parse_list("1,x").is_err());
        assert_eq!(parse_list_u32("4,5").unwrap(), vec![4u32, 5]);
    }
}
