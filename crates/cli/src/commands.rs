//! The CLI subcommands.

use crate::args::{parse_list, parse_list_u32, Args};
use crate::csv;
use crate::metrics;
use crate::wsfile::{convert_to_v3, Meta, WsFile};
use ss_array::NdArray;
use ss_core::{RetentionPolicy, TilingMap};
use ss_storage::{FaultConfig, FaultInjectingBlockStore, RetryPolicy, RetryingBlockStore};
use ss_transform::ArraySource;
use std::path::Path;

/// A command failure with a process exit code attached. Usage mistakes
/// (`code` 1) reprint the USAGE text; detected data corruption (`code` 2)
/// does not — the message is the whole story.
#[derive(Debug)]
pub struct CmdError {
    /// Human-readable cause.
    pub msg: String,
    /// Process exit code.
    pub code: i32,
    /// Whether main should append the USAGE text.
    pub usage: bool,
}

impl CmdError {
    /// A corruption failure: exit code 2, no usage text.
    pub fn corruption(msg: impl Into<String>) -> CmdError {
        CmdError {
            msg: msg.into(),
            code: 2,
            usage: false,
        }
    }
}

impl From<String> for CmdError {
    fn from(msg: String) -> CmdError {
        CmdError {
            msg,
            code: 1,
            usage: true,
        }
    }
}

impl From<CmdError> for String {
    fn from(e: CmdError) -> String {
        e.msg
    }
}

/// Rejects mutation of read-only (legacy v1) stores with an actionable
/// message instead of a deep typed error.
/// Publishes which compute kernel this binary was built with
/// (`kernel.lanes` gauge; 1 = scalar) so `--metrics-json` rows and the
/// metrics endpoint label their numbers with the build that produced
/// them.
fn report_kernel() {
    ss_obs::global()
        .gauge("kernel.lanes")
        .set(ss_core::kernel::lanes() as u64);
}

fn check_writable(ws: &WsFile, verb: &str) -> Result<(), String> {
    if ws.read_only() {
        Err(format!(
            "cannot {verb}: store is a legacy v1 file (no checksums) and opens read-only; \
             create a fresh store and re-ingest to upgrade to the v2 format"
        ))
    } else {
        Ok(())
    }
}

/// Parses the fault-injection/retry flags shared by `ingest`:
/// `--fault-read P --fault-write P --fault-seed S --retries N`. Returns
/// `None` when none are present (the unwrapped fast path).
fn fault_flags(args: &Args) -> Result<Option<(FaultConfig, RetryPolicy)>, String> {
    let read = args.flag_opt("fault-read");
    let write = args.flag_opt("fault-write");
    let seed = args.flag_opt("fault-seed");
    let retries = args.flag_opt("retries");
    if read.is_none() && write.is_none() && seed.is_none() && retries.is_none() {
        return Ok(None);
    }
    let mut cfg = FaultConfig::default();
    if let Some(r) = read {
        cfg.read_error_rate = r.parse().map_err(|e| format!("bad --fault-read: {e}"))?;
    }
    if let Some(w) = write {
        cfg.write_error_rate = w.parse().map_err(|e| format!("bad --fault-write: {e}"))?;
    }
    if let Some(s) = seed {
        cfg.seed = s.parse().map_err(|e| format!("bad --fault-seed: {e}"))?;
    }
    let policy = match retries {
        Some(n) => RetryPolicy::with_retries(n.parse().map_err(|e| format!("bad --retries: {e}"))?),
        None => RetryPolicy::default(),
    };
    Ok(Some((cfg, policy)))
}

/// `create <store> --levels a,b,… [--tiles a,b,…] [--axis k]`
pub fn create(args: &Args) -> Result<(), String> {
    let path = args.pos(0, "store path")?;
    let levels = parse_list_u32(args.flag("levels")?)?;
    let tiles = match args.flag_opt("tiles") {
        Some(t) => parse_list_u32(t)?,
        None => levels.iter().map(|&n| n.min(2)).collect(),
    };
    let axis = match args.flag_opt("axis") {
        Some(a) => a.parse::<usize>().map_err(|e| e.to_string())?,
        None => levels.len() - 1,
    };
    if tiles.len() != levels.len() {
        return Err("levels/tiles rank mismatch".into());
    }
    if axis >= levels.len() {
        return Err("append axis out of range".into());
    }
    let meta = Meta::new(levels, tiles, 0, axis);
    let ws = WsFile::create(Path::new(path), meta)?;
    println!(
        "created {} ({} blocks of {} coefficients)",
        path,
        ws.store.map().num_tiles(),
        ws.store.map().block_capacity()
    );
    metrics::emit_quiet(args, Some(&ws.stats))
}

/// Parses `--format [v2|v3] [--threshold ε | --topk K]` into the
/// retention policy for a v3 conversion; `Ok(None)` means stay dense
/// (v2, the default).
fn v3_flags(args: &Args) -> Result<Option<RetentionPolicy>, String> {
    let format = args.flag_opt("format").unwrap_or("v2");
    let threshold = args.flag_opt("threshold");
    let topk = args.flag_opt("topk");
    match format {
        "v2" => {
            if threshold.is_some() || topk.is_some() {
                return Err("--threshold/--topk require --format v3".into());
            }
            Ok(None)
        }
        "v3" => match (threshold, topk) {
            (Some(_), Some(_)) => Err("--threshold and --topk are mutually exclusive".into()),
            (Some(t), None) => {
                let eps: f64 = t.parse().map_err(|e| format!("bad --threshold: {e}"))?;
                if eps.is_nan() || eps < 0.0 {
                    return Err("--threshold must be a number >= 0".into());
                }
                Ok(Some(RetentionPolicy::Threshold(eps)))
            }
            (None, Some(k)) => {
                let k: usize = k.parse().map_err(|e| format!("bad --topk: {e}"))?;
                Ok(Some(RetentionPolicy::TopK(k)))
            }
            (None, None) => Ok(Some(RetentionPolicy::Keep)),
        },
        other => Err(format!("bad --format: {other} (v2|v3)")),
    }
}

/// Rewrites the freshly ingested dense store at `path` into the sparse
/// v3 layout under `policy`, printing the compression ratio and the
/// *achieved* (not just requested) retention error (docs/ERROR_MODEL.md).
fn run_v3_conversion(path: &Path, policy: RetentionPolicy) -> Result<(), String> {
    let report = convert_to_v3(path, policy)?;
    let r = report.retention;
    println!(
        "converted to sparse v3: {} -> {} bytes on disk ({:.2}x), \
         kept {} / dropped {} non-zero coefficients",
        report.dense_bytes,
        report.sparse_bytes,
        report.dense_bytes as f64 / report.sparse_bytes.max(1) as f64,
        r.kept,
        r.dropped,
    );
    if policy.lossless() {
        println!("retention: lossless (bit-identical to the dense store)");
    } else {
        println!(
            "retention: achieved L2 error {:.6e}, max dropped coefficient {:.6e}",
            r.l2_error(),
            r.max_dropped
        );
    }
    Ok(())
}

/// `ingest <store> --data values.csv [--chunk a,b,…] [--workers N]
/// [--coalesce N [--mode exact|merged]]
/// [--format v3 [--threshold ε | --topk K]]
/// [--fault-read P] [--fault-write P] [--fault-seed S] [--retries N]
/// [--metrics-out FILE] [--metrics-port N]`
///
/// `--coalesce N` buffers the SHIFT-SPLIT delta streams of N consecutive
/// chunks tile-major and group-commits them together (N = 0 buffers the
/// whole ingest), writing split-path tiles once per group instead of once
/// per chunk; it composes with neither `--workers` nor fault injection.
///
/// `--format v3` rewrites the store into the sparse bucketed layout of
/// `docs/FORMAT.md` §8 after the transform completes, optionally applying
/// a lossy retention pass (`--threshold ε` zeroes coefficients with
/// `|c| <= ε`; `--topk K` keeps the K largest per tile) and reporting the
/// achieved error.
pub fn ingest(args: &Args) -> Result<(), String> {
    // Held for the duration of the transform so a scraper can watch the
    // phase histograms fill in live.
    let _server = metrics::maybe_serve(args)?;
    let path = args.pos(0, "store path")?;
    let v3_policy = v3_flags(args)?;
    let mut ws = WsFile::open(Path::new(path))?;
    check_writable(&ws, "ingest")?;
    if ws.sparse() {
        return Err(
            "cannot ingest into a sparse v3 store: create a fresh store and \
             ingest with --format v3 to rebuild it"
                .into(),
        );
    }
    let dims = ws.meta.dims();
    let data = csv::read_array(Path::new(args.flag("data")?), &dims)?;
    let chunk_levels: Vec<u32> = match args.flag_opt("chunk") {
        Some(c) => parse_list_u32(c)?,
        None => ws.meta.levels.iter().map(|&n| n.min(3)).collect(),
    };
    let src = ArraySource::new(&data, &chunk_levels);
    let workers = match args.flag_opt("workers") {
        Some(w) => Some(ss_transform::resolve_workers(
            w.parse::<usize>()
                .map_err(|e| format!("bad --workers: {e}"))?,
        )),
        None => None,
    };
    let faults = fault_flags(args)?;
    if let Some(group) = args.flag_opt("coalesce") {
        let group: usize = group.parse().map_err(|e| format!("bad --coalesce: {e}"))?;
        if workers.is_some() || faults.is_some() {
            return Err("--coalesce composes with neither --workers nor fault injection".into());
        }
        let mode = match args.flag_opt("mode") {
            Some(m) => {
                ss_maintain::FlushMode::parse(m).ok_or(format!("bad --mode: {m} (exact|merged)"))?
            }
            None => ss_maintain::FlushMode::Exact,
        };
        let report = ss_maintain::transform_standard_coalesced(&src, &mut ws.store, group, mode);
        ws.meta.filled = dims[ws.meta.axis];
        ws.save_meta()?;
        report_kernel();
        println!(
            "ingested {} cells in {} chunks with {} group flushes \
             ({} tiles written, coalescing ratio {:.2}, {} kernel)",
            report.input_coeffs,
            report.chunks,
            report.flushes,
            report.flush.tiles_written,
            report.flush.coalescing_ratio(),
            ss_core::kernel::name()
        );
        let stats = ws.stats.clone();
        drop(ws);
        if let Some(policy) = v3_policy {
            run_v3_conversion(Path::new(path), policy)?;
        }
        return metrics::emit(args, &stats);
    }
    let (mut ws, report) = match (faults, workers) {
        (Some((cfg, policy)), workers) => {
            // Rebuild the stack with the fault/retry wrappers between the
            // pool and the file: pool → retries → injected faults → file.
            let store_path = ws.path().to_path_buf();
            let meta = ws.meta.clone();
            let stats = ws.stats.clone();
            let (map, blocks) = ws.store.into_parts();
            let wrapped =
                RetryingBlockStore::new(FaultInjectingBlockStore::new(blocks, cfg), policy);
            match workers {
                Some(workers) => {
                    let shared = ss_storage::SharedCoeffStore::new(
                        map,
                        wrapped,
                        1 << 10,
                        workers,
                        stats.clone(),
                    );
                    let report =
                        ss_transform::try_transform_standard_parallel(&src, &shared, workers)
                            .map_err(|e| e.to_string())?;
                    let (map, wrapped) = shared.into_parts();
                    let blocks = wrapped.into_inner().into_inner();
                    (
                        WsFile::from_parts(meta, map, blocks, stats, &store_path),
                        report,
                    )
                }
                None => {
                    let mut store =
                        ss_storage::CoeffStore::new(map, wrapped, 1 << 10, stats.clone());
                    let report = ss_transform::try_transform_standard(&src, &mut store, false)
                        .map_err(|e| e.to_string())?;
                    let (map, wrapped) = store.into_parts();
                    let blocks = wrapped.into_inner().into_inner();
                    (
                        WsFile::from_parts(meta, map, blocks, stats, &store_path),
                        report,
                    )
                }
            }
        }
        (None, Some(workers)) => {
            // Re-house the block file in a sharded, thread-safe pool for the
            // duration of the transform, then hand it back to the serial pool.
            let store_path = ws.path().to_path_buf();
            let meta = ws.meta.clone();
            let stats = ws.stats.clone();
            let (map, blocks) = ws.store.into_parts();
            let shared =
                ss_storage::SharedCoeffStore::new(map, blocks, 1 << 10, workers, stats.clone());
            let report = ss_transform::transform_standard_parallel(&src, &shared, workers);
            let (map, blocks) = shared.into_parts();
            (
                WsFile::from_parts(meta, map, blocks, stats, &store_path),
                report,
            )
        }
        (None, None) => {
            let report = ss_transform::transform_standard(&src, &mut ws.store, false);
            (ws, report)
        }
    };
    ws.meta.filled = dims[ws.meta.axis];
    ws.save_meta()?;
    println!(
        "ingested {} cells in {} chunks",
        report.input_coeffs, report.chunks
    );
    let stats = ws.stats.clone();
    drop(ws);
    if let Some(policy) = v3_policy {
        run_v3_conversion(Path::new(path), policy)?;
    }
    metrics::emit(args, &stats)
}

/// `point <store> i,j,…`
pub fn point(args: &Args) -> Result<(), String> {
    if args.pos_len() > 2 {
        return Err("point takes exactly a store path and one position".into());
    }
    let path = args.pos(0, "store path")?;
    let pos = parse_list(args.pos(1, "position (i,j,…)")?)?;
    let mut ws = WsFile::open(Path::new(path))?;
    check_rank(&ws.meta, pos.len())?;
    let value = ss_query::point_standard(&mut ws.store, &ws.meta.levels, &pos);
    println!("{value}");
    metrics::emit(args, &ws.stats)
}

/// `sum <store> --lo a,b,… --hi a,b,…`
pub fn sum(args: &Args) -> Result<(), String> {
    let path = args.pos(0, "store path")?;
    let lo = parse_list(args.flag("lo")?)?;
    let hi = parse_list(args.flag("hi")?)?;
    let mut ws = WsFile::open(Path::new(path))?;
    check_rank(&ws.meta, lo.len())?;
    check_rank(&ws.meta, hi.len())?;
    let value = ss_query::range_sum_standard(&mut ws.store, &ws.meta.levels, &lo, &hi);
    println!("{value}");
    metrics::emit(args, &ws.stats)
}

/// `extract <store> --lo a,b,… --hi a,b,… [--out file]`
pub fn extract(args: &Args) -> Result<(), String> {
    let path = args.pos(0, "store path")?;
    let lo = parse_list(args.flag("lo")?)?;
    let hi = parse_list(args.flag("hi")?)?;
    let mut ws = WsFile::open(Path::new(path))?;
    check_rank(&ws.meta, lo.len())?;
    let region = ss_query::reconstruct_box_standard(&mut ws.store, &ws.meta.levels, &lo, &hi);
    let text = csv::write_array(&region);
    match args.flag_opt("out") {
        Some(out) => {
            std::fs::write(out, text).map_err(|e| e.to_string())?;
            println!("wrote {} cells to {out}", region.len());
        }
        None => print!("{text}"),
    }
    metrics::emit(args, &ws.stats)
}

/// `update <store> (--at a,b,… --data delta.csv --dims a,b,… |
/// --batch boxes.txt [--workers N]) [--mode exact|merged]`
///
/// With `--at/--dims/--data`, applies one delta box through the serial
/// per-box path. With `--batch FILE`, reads one box per line
/// (`at;dims;datafile`, relative data paths resolved against the batch
/// file's directory), buffers every box's SHIFT-SPLIT delta stream
/// tile-major, and group-commits the whole batch with one
/// read-modify-write per dirty tile and a single durability flush —
/// instead of one per box. `--workers N` shards the flush across threads
/// (bit-identical to the serial flush); `--mode merged` pre-sums deltas
/// per coefficient (smallest flush, equal to serial only up to rounding;
/// the default `exact` mode is bit-identical).
pub fn update(args: &Args) -> Result<(), String> {
    let path = args.pos(0, "store path")?;
    let mode = match args.flag_opt("mode") {
        Some(m) => {
            ss_maintain::FlushMode::parse(m).ok_or(format!("bad --mode: {m} (exact|merged)"))?
        }
        None => ss_maintain::FlushMode::Exact,
    };
    let mut ws = WsFile::open(Path::new(path))?;
    check_writable(&ws, "update")?;
    let Some(batch_file) = args.flag_opt("batch") else {
        let origin = parse_list(args.flag("at")?)?;
        let dims = parse_list(args.flag("dims")?)?;
        let delta = csv::read_array(Path::new(args.flag("data")?), &dims)?;
        check_rank(&ws.meta, origin.len())?;
        let report =
            ss_transform::update_box_standard(&mut ws.store, &ws.meta.levels, &origin, &delta);
        println!(
            "applied {} update cells as {} dyadic pieces ({} coefficients touched)",
            delta.len(),
            report.pieces,
            report.coeffs_touched
        );
        return metrics::emit(args, &ws.stats);
    };
    let boxes = read_batch_file(Path::new(batch_file), &ws.meta)?;
    let workers = match args.flag_opt("workers") {
        Some(w) => Some(ss_transform::resolve_workers(
            w.parse::<usize>()
                .map_err(|e| format!("bad --workers: {e}"))?,
        )),
        None => None,
    };
    let levels = ws.meta.levels.clone();
    let (ws, report) = match workers {
        Some(workers) => {
            // Re-house the block file in the sharded thread-safe pool for
            // the flush, then hand it back (the ingest --workers pattern).
            let store_path = ws.path().to_path_buf();
            let meta = ws.meta.clone();
            let stats = ws.stats.clone();
            let (map, blocks) = ws.store.into_parts();
            let shared =
                ss_storage::SharedCoeffStore::new(map, blocks, 1 << 10, workers, stats.clone());
            let report = ss_maintain::update_boxes_standard_parallel(
                &shared, &levels, &boxes, mode, workers,
            );
            let (map, blocks) = shared.into_parts();
            (
                WsFile::from_parts(meta, map, blocks, stats, &store_path),
                report,
            )
        }
        None => {
            let report = ss_maintain::update_boxes_standard(&mut ws.store, &levels, &boxes, mode);
            (ws, report)
        }
    };
    report_kernel();
    println!(
        "applied {} boxes as {} dyadic pieces ({} coefficients); \
         group flush wrote {} tiles for {} per-box tile touches \
         (coalescing ratio {:.2}, {} kernel)",
        boxes.len(),
        report.update.pieces,
        report.update.coeffs_touched,
        report.flush.tiles_written,
        report.flush.tile_touches,
        report.flush.coalescing_ratio(),
        ss_core::kernel::name()
    );
    metrics::emit(args, &ws.stats)
}

/// An update box: origin plus the dense delta to add there.
type UpdateBox = (Vec<usize>, NdArray<f64>);

/// Parses a `--batch` file: one box per line, `at;dims;datafile`
/// (semicolon-separated, `#` comments and blank lines skipped). Relative
/// data paths resolve against the batch file's directory.
fn read_batch_file(path: &Path, meta: &Meta) -> Result<Vec<UpdateBox>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read batch file {}: {e}", path.display()))?;
    let base = path.parent().unwrap_or(Path::new("."));
    let mut boxes = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split(';').collect();
        if parts.len() != 3 {
            return Err(format!(
                "batch line {}: expected `at;dims;datafile`, got {line:?}",
                lineno + 1
            ));
        }
        let origin = parse_list(parts[0].trim())?;
        let dims = parse_list(parts[1].trim())?;
        check_rank(meta, origin.len())?;
        let data_path = {
            let p = Path::new(parts[2].trim());
            if p.is_absolute() {
                p.to_path_buf()
            } else {
                base.join(p)
            }
        };
        let delta = csv::read_array(&data_path, &dims)?;
        boxes.push((origin, delta));
    }
    if boxes.is_empty() {
        return Err("batch file holds no boxes".into());
    }
    Ok(boxes)
}

/// `append <store> --data chunk.csv --extent n`
///
/// The chunk spans the full domain on every non-append axis and `extent`
/// cells along the append axis. Reopens/expands the store as needed.
pub fn append(args: &Args) -> Result<(), String> {
    let path = args.pos(0, "store path")?;
    let extent = args
        .flag("extent")?
        .parse::<usize>()
        .map_err(|e| e.to_string())?;
    if !ss_array::is_pow2(extent) {
        return Err("extent must be a power of two".into());
    }
    let ws = WsFile::open(Path::new(path))?;
    check_writable(&ws, "append")?;
    if ws.sparse() {
        return Err(
            "cannot append: sparse v3 stores do not support domain expansion \
             (docs/FORMAT.md §8.6); re-ingest the grown dataset into a fresh \
             store with --format v3"
                .into(),
        );
    }
    let meta = ws.meta.clone();
    drop(ws);
    let mut dims = meta.dims();
    dims[meta.axis] = extent;
    let chunk = csv::read_array(Path::new(args.flag("data")?), &dims)?;
    // Rebuild an Appender over the persistent file, seeded from the meta.
    let stats = ss_storage::IoStats::new();
    let new_meta = append_to_file(Path::new(path), meta, &chunk, stats.clone())?;
    println!(
        "appended {extent} slices; domain now {:?}, filled {}",
        new_meta.dims(),
        new_meta.filled
    );
    metrics::emit(args, &stats)
}

/// Appends one chunk to a store file, expanding (into a rewritten file)
/// when the domain must double. Returns the updated metadata.
fn append_to_file(
    path: &Path,
    mut meta: Meta,
    chunk: &NdArray<f64>,
    stats: ss_storage::IoStats,
) -> Result<Meta, String> {
    let extent = chunk.shape().dim(meta.axis);
    // Expand as many times as needed, each into a fresh file swapped over
    // the old one.
    while meta.filled + extent > (1usize << meta.levels[meta.axis]) {
        expand_file(path, &mut meta, stats.clone())?;
    }
    let mut ws = open_with_meta(path, meta.clone(), stats.clone())?;
    let mut block = vec![0usize; meta.levels.len()];
    block[meta.axis] = meta.filled / extent;
    let mut t = chunk.clone();
    ss_core::standard::forward(&mut t);
    ss_core::split::standard_deltas(&t, &meta.levels, &block, |idx, delta| {
        ws.store.add(idx, delta);
    });
    ws.store.flush();
    meta.filled += extent;
    ws.meta = meta.clone();
    ws.save_meta()?;
    Ok(meta)
}

/// Opens the blocks file under caller-supplied metadata and counters. The
/// metadata is authoritative (the on-disk `.meta` may be mid-update during
/// an expansion).
fn open_with_meta(path: &Path, meta: Meta, stats: ss_storage::IoStats) -> Result<WsFile, String> {
    let map = meta.tiling();
    let blocks = ss_storage::FileBlockStore::open(
        path,
        map.block_capacity(),
        map.num_tiles(),
        stats.clone(),
    )
    .map_err(|e| e.to_string())?;
    Ok(WsFile::from_parts(meta, map, blocks, stats, path))
}

/// Doubles the append axis of the store at `path`, migrating coefficients
/// into a rewritten blocks file.
fn expand_file(path: &Path, meta: &mut Meta, stats: ss_storage::IoStats) -> Result<(), String> {
    let mut old = open_with_meta(path, meta.clone(), stats.clone())?;
    let mut new_meta = meta.clone();
    new_meta.levels[meta.axis] += 1;
    let tmp = path.with_extension("expand.tmp");
    let new_map = new_meta.tiling();
    let new_blocks = ss_storage::FileBlockStore::create(
        &tmp,
        new_map.block_capacity(),
        new_map.num_tiles(),
        stats.clone(),
    )
    .map_err(|e| e.to_string())?;
    let mut new_store = ss_storage::CoeffStore::new(new_map, new_blocks, 1 << 10, stats.clone());
    // Migrate every coefficient (details keep (level, k); the old average
    // splits into the new average plus the new root detail).
    let n_axis = meta.levels[meta.axis];
    let old_dims = meta.dims();
    let d = old_dims.len();
    let mut target = vec![0usize; d];
    for idx in ss_array::MultiIndexIter::new(&old_dims) {
        let v = old.store.read(&idx);
        if v == 0.0 {
            continue;
        }
        target.copy_from_slice(&idx);
        for (new_i, factor) in ss_core::append::expand_index_1d(n_axis, idx[meta.axis]) {
            target[meta.axis] = new_i;
            new_store.add(&target, v * factor);
        }
    }
    new_store.flush();
    let (_, mut new_blocks) = new_store.into_parts();
    // The expanded store must be durable before it replaces the old one.
    new_blocks.sync().map_err(|e| e.to_string())?;
    drop(new_blocks);
    drop(old);
    // Blocks file first, checksum sidecar second. A crash between the two
    // renames leaves a sidecar whose length no longer matches the blocks
    // file, which `open` rejects — detectable, never silently wrong.
    std::fs::rename(&tmp, path).map_err(|e| e.to_string())?;
    std::fs::rename(
        ss_storage::file::sidecar_path(&tmp),
        ss_storage::file::sidecar_path(path),
    )
    .map_err(|e| e.to_string())?;
    *meta = new_meta;
    Ok(())
}

/// `scrub <store>`
///
/// Verifies every block against its stored CRC-32. Exits 0 when the store
/// is fully intact, 2 when corruption is detected (so scripts can
/// distinguish "damaged data" from "bad invocation", which exits 1).
pub fn scrub(args: &Args) -> Result<(), CmdError> {
    let path = args.pos(0, "store path")?;
    let mut ws = WsFile::open(Path::new(path)).map_err(|e| CmdError::from(e.to_string()))?;
    let report = ws
        .verify()
        .map_err(|e| CmdError::corruption(e.to_string()))?;
    println!("{report}");
    metrics::emit_quiet(args, Some(&ws.stats))?;
    if report.is_clean() {
        Ok(())
    } else {
        Err(CmdError::corruption(format!(
            "{} of {} block(s) corrupt",
            report.corrupt.len(),
            report.blocks
        )))
    }
}

/// `stats <store>` — or `stats --watch host:port [--iterations N]
/// [--interval-ms M]` for a live `top`-style view of a running server's
/// metrics endpoint (see `serve --metrics-port` / `serve-metrics`).
pub fn stats(args: &Args) -> Result<(), String> {
    if let Some(addr) = args.flag_opt("watch") {
        if addr.is_empty() {
            return Err("--watch needs a metrics address (host:port)".into());
        }
        return stats_watch(args, addr);
    }
    let path = args.pos(0, "store path")?;
    let mut ws = WsFile::open(Path::new(path))?;
    let map = ws.meta.tiling();
    println!("store   : {path}");
    println!(
        "format  : v{}{}",
        ws.meta.version,
        if ws.sparse() {
            " (sparse bucketed)"
        } else if ws.read_only() {
            " (legacy, read-only)"
        } else {
            " (dense)"
        }
    );
    println!(
        "domain  : {:?} (levels {:?})",
        ws.meta.dims(),
        ws.meta.levels
    );
    println!(
        "tiles   : {} blocks x {} coefficients (per-axis sides {:?})",
        map.num_tiles(),
        map.block_capacity(),
        ws.meta
            .tiles
            .iter()
            .map(|&b| 1usize << b)
            .collect::<Vec<_>>()
    );
    println!("append  : axis {}, filled {}", ws.meta.axis, ws.meta.filled);
    println!(
        "kernel  : {} (lanes {})",
        ss_core::kernel::name(),
        ss_core::kernel::lanes()
    );
    let disk = std::fs::metadata(ws.path()).map(|m| m.len()).unwrap_or(0);
    println!("on disk : {disk} bytes");
    if let Some(live) = ws.store.pool().store_mut().sparse_live_bytes() {
        let dense = (map.num_tiles() * map.block_capacity() * 8) as u64;
        let overhead = ss_storage::sparse::V3_HEADER_LEN
            + map.num_tiles() as u64 * ss_storage::sparse::V3_DIR_ENTRY_LEN;
        println!(
            "sparse  : {live} live payload bytes, {overhead} header/directory, \
             {} relocation garbage; dense equivalent {dense} bytes ({:.2}x saved)",
            disk.saturating_sub(live).saturating_sub(overhead),
            dense as f64 / disk.max(1) as f64
        );
    }
    metrics::emit_quiet(args, Some(&ws.stats))
}

/// The `stats --watch` loop: polls `/metrics.json` on `addr` and renders
/// a compact live view — request/slow counters plus recent (windowed)
/// and lifetime latency percentiles. `--iterations N` stops after N
/// refreshes (0 or absent = run until killed); `--interval-ms M` sets the
/// refresh cadence. On a terminal each refresh redraws in place.
fn stats_watch(args: &Args, addr: &str) -> Result<(), String> {
    let iterations = match args.flag_opt("iterations") {
        Some(n) => n
            .parse::<u64>()
            .map_err(|e| format!("bad --iterations: {e}"))?,
        None => 0,
    };
    let interval = match args.flag_opt("interval-ms") {
        Some(m) => m
            .parse::<u64>()
            .map_err(|e| format!("bad --interval-ms: {e}"))?,
        None => 1000,
    };
    use std::io::IsTerminal as _;
    let redraw = std::io::stdout().is_terminal();
    let mut done = 0u64;
    loop {
        let body = http_get(addr, "/metrics.json")?;
        let doc =
            ss_obs::json::parse(&body).map_err(|e| format!("bad metrics JSON from {addr}: {e}"))?;
        if redraw {
            // Clear screen + home, like top: each refresh repaints.
            print!("\x1b[2J\x1b[H");
        }
        render_watch(addr, &doc);
        if redraw {
            use std::io::Write as _;
            std::io::stdout().flush().ok();
        }
        done += 1;
        if iterations != 0 && done >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval));
    }
}

/// One `stats --watch` frame from an `ss-metrics-v1` document.
fn render_watch(addr: &str, doc: &ss_obs::json::Value) {
    println!("watching {addr}");
    if let Some(w) = doc.get("recent_window_s") {
        println!("recent window: {w}s");
    }
    render_topology(doc);
    if let Some(counters) = doc.get("counters").and_then(|c| c.as_object()) {
        if !counters.is_empty() {
            println!("counters:");
            for (name, v) in counters {
                println!("  {name:<32} {v}");
            }
        }
    }
    if let Some(hists) = doc.get("histograms").and_then(|h| h.as_object()) {
        if !hists.is_empty() {
            println!("latency (ns):");
            println!(
                "  {:<32} {:>10} {:>12} {:>12}   recent p50/p99",
                "histogram", "count", "p50", "p99"
            );
            for (name, h) in hists {
                let field = |v: &ss_obs::json::Value, k: &str| {
                    v.get(k).and_then(|x| x.as_u64()).unwrap_or(0)
                };
                let recent = match h.get("recent") {
                    Some(r) => format!("{}/{}", field(r, "p50"), field(r, "p99")),
                    None => "-".to_string(),
                };
                println!(
                    "  {name:<32} {:>10} {:>12} {:>12}   {recent}",
                    field(h, "count"),
                    field(h, "p50"),
                    field(h, "p99"),
                );
            }
        }
    }
}

/// The router topology section of a `stats --watch` frame: present only
/// when the watched process is a scatter-gather router (it sets the
/// `router.shards` / `router.replicas` gauges at startup). One line per
/// shard with its cumulative sub-request count.
fn render_topology(doc: &ss_obs::json::Value) {
    let gauge = |name: &str| {
        doc.get("gauges")
            .and_then(|g| g.get(name))
            .and_then(|v| v.as_u64())
    };
    let (Some(shards), Some(replicas)) = (gauge("router.shards"), gauge("router.replicas")) else {
        return;
    };
    println!("router topology: {shards} shards x {replicas} replicas");
    let counters = doc.get("counters").and_then(|c| c.as_object());
    for s in 0..shards {
        let name = format!("router.shard_requests.{s}");
        let served = counters
            .and_then(|c| c.iter().find(|(n, _)| *n == name))
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or(0);
        println!("  shard {s:<3} {served:>12} sub-requests");
    }
}

/// Minimal HTTP/1.0 GET against the metrics endpoint (std-only; the
/// endpoint speaks plain-text HTTP with `Connection: close`).
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut sock =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    sock.write_all(
        format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .map_err(|e| format!("sending request to {addr}: {e}"))?;
    let mut response = String::new();
    sock.read_to_string(&mut response)
        .map_err(|e| format!("reading response from {addr}: {e}"))?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(format!("malformed HTTP response from {addr}")),
    }
}

/// `serve-metrics --port N [--requests K] [store]`
///
/// Serves the process-wide metrics registry over plain TCP: Prometheus
/// text exposition on any path, the `ss-metrics-v1` JSON snapshot on paths
/// ending in `.json`. With a store argument, the store's I/O counters are
/// folded in first so the endpoint has content immediately. `--port 0`
/// picks an ephemeral port (printed on stdout); `--requests K` exits after
/// answering K requests (without it the server runs until killed).
pub fn serve_metrics(args: &Args) -> Result<(), String> {
    let port: u16 = match args.flag_opt("port") {
        Some(p) => p.parse().map_err(|e| format!("bad --port: {e}"))?,
        None => 0,
    };
    let requests = match args.flag_opt("requests") {
        Some(r) => Some(
            r.parse::<u64>()
                .map_err(|e| format!("bad --requests: {e}"))?,
        ),
        None => None,
    };
    if args.pos_len() > 0 {
        let path = args.pos(0, "store path")?;
        let ws = WsFile::open(Path::new(path))?;
        ws.stats.publish(&ss_obs::global());
    }
    let listener = std::net::TcpListener::bind(("127.0.0.1", port)).map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    println!("serving on {addr}");
    // Scripts (and our tests) read this line to learn the ephemeral port,
    // so it must not sit in the stdout buffer while we block in accept().
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let served =
        ss_obs::serve(&listener, &ss_obs::global(), requests).map_err(|e| e.to_string())?;
    println!("served {served} requests");
    Ok(())
}

/// `serve <store> [--port N] [--workers W] [--batch B] [--requests K]
/// [--addr-file FILE] [--writable [--wal FILE] [--mode exact|merged]]
/// [--router --shards a:p,b:p,… [--replicas N] [--bounds 0,c1,…,T]]
/// [--slow-ms T] [--trace-out FILE | --trace-ring] [--metrics-port N]`
///
/// Serves standard-form point and range-sum queries against the store over
/// plain TCP (line-delimited JSON; see the `ss-serve` crate docs for the
/// wire format). The store is re-housed in the sharded thread-safe pool and
/// answered by `W` executor workers that batch up to `B` concurrently
/// pending requests tile-major, so a hot tile wanted by several clients at
/// once is fetched once. `--port 0` (the default) picks an ephemeral port —
/// printed on stdout and, with `--addr-file`, written to a file scripts can
/// poll; `--requests K` exits cleanly after K responses (without it the
/// server runs until killed).
///
/// `--writable` additionally accepts `update` / `commit` operations over
/// an MVCC snapshot store: every commit is appended + fsynced to the
/// write-ahead log (`--wal`, default `<store>.wal`) *before* it becomes
/// visible, commits left in the log by a crash are replayed on startup,
/// and a clean shutdown checkpoints the store and truncates the log.
///
/// Introspection: `--trace-out FILE` records every request's spans and
/// the commit pipeline's epoch-tagged events as `ss-trace-v1` JSON lines
/// (`trace-dump` summarises the file or converts it for chrome://tracing);
/// `--trace-ring` keeps the same events in the in-memory ring only.
/// `--slow-ms T` logs any request slower than `T` milliseconds on stderr
/// and counts it in `serve.requests_slow`. `--metrics-port N` exposes the
/// live registry (with sliding-window recent percentiles) while serving.
pub fn serve(args: &Args) -> Result<(), String> {
    let path = args.pos(0, "store path")?;
    let port: u16 = match args.flag_opt("port") {
        Some(p) => p.parse().map_err(|e| format!("bad --port: {e}"))?,
        None => 0,
    };
    let workers = match args.flag_opt("workers") {
        Some(w) => w
            .parse::<usize>()
            .map_err(|e| format!("bad --workers: {e}"))?,
        None => 4,
    };
    if workers == 0 {
        return Err("--workers must be at least one".into());
    }
    let batch_max = match args.flag_opt("batch") {
        Some(b) => b
            .parse::<usize>()
            .map_err(|e| format!("bad --batch: {e}"))?,
        None => 64,
    };
    if batch_max == 0 {
        return Err("--batch must be at least one".into());
    }
    let max_requests = match args.flag_opt("requests") {
        Some(r) => Some(
            r.parse::<u64>()
                .map_err(|e| format!("bad --requests: {e}"))?,
        ),
        None => None,
    };
    let slow_ns = match args.flag_opt("slow-ms") {
        Some(ms) => {
            let ms: f64 = ms.parse().map_err(|e| format!("bad --slow-ms: {e}"))?;
            if !ms.is_finite() || ms < 0.0 {
                return Err("--slow-ms must be a non-negative number".into());
            }
            Some((ms * 1e6) as u64)
        }
        None => None,
    };
    // Tracing goes live before the listener so even the first request is
    // covered; `--trace-out` implies the ring too (trace-dump reads the
    // file, `stats --watch` style tooling reads the ring).
    let trace_out = args.flag_opt("trace-out").filter(|p| !p.is_empty());
    if let Some(tpath) = trace_out {
        let file = std::fs::File::create(tpath).map_err(|e| format!("creating {tpath}: {e}"))?;
        ss_obs::trace::tracer().enable_export(Box::new(std::io::BufWriter::new(file)));
    } else if args.flag_set("trace-ring") {
        ss_obs::trace::tracer().enable_ring();
    }
    let ws = WsFile::open(Path::new(path))?;
    let writable = args.flag_set("writable");
    if writable {
        check_writable(&ws, "serve --writable")?;
    }
    let levels = ws.meta.levels.clone();
    let tiling = ws.meta.tiling();
    let stats = ws.stats.clone();
    let (map, blocks) = ws.store.into_parts();
    let shared = ss_storage::SharedCoeffStore::new(map, blocks, 1 << 10, workers, stats.clone());
    let config = ss_serve::ServeConfig {
        workers,
        batch_max,
        max_requests,
        slow_ns,
    };
    let _metrics = metrics::maybe_serve(args)?;
    let bind_addr = format!("127.0.0.1:{port}");
    let (server, snapshot) =
        if args.flag_set("router") {
            if writable {
                return Err(
                    "--router and --writable conflict: a router holds no store or WAL of its own \
                 (start the shard servers --writable instead)"
                        .into(),
                );
            }
            let mode = match args.flag_opt("mode") {
                Some(m) if !m.is_empty() => ss_maintain::FlushMode::parse(m)
                    .ok_or(format!("bad --mode: {m} (exact|merged)"))?,
                _ => ss_maintain::FlushMode::Exact,
            };
            let topo = parse_router_topology(args, tiling.num_tiles())?;
            println!(
                "router over {} shards x {} replicas (tile bounds {:?})",
                topo.shard_map().shards(),
                topo.shard_map().replicas(),
                topo.shard_map().bounds()
            );
            let server =
                ss_serve::QueryServer::bind_router(&bind_addr, tiling, levels, topo, mode, config)
                    .map_err(|e| e.to_string())?;
            (server, None)
        } else if writable {
            let mode = match args.flag_opt("mode") {
                Some(m) if !m.is_empty() => ss_maintain::FlushMode::parse(m)
                    .ok_or(format!("bad --mode: {m} (exact|merged)"))?,
                _ => ss_maintain::FlushMode::Exact,
            };
            let (shared, wal, replayed) = open_wal_and_replay(args, path, shared)?;
            if replayed.commits > 0 {
                println!(
                    "wal: replayed {} commits ({} tile images), resuming at epoch {}",
                    replayed.commits, replayed.tiles, replayed.last_epoch
                );
            }
            let snap = std::sync::Arc::new(ss_maintain::SnapshotCoeffStore::new(
                shared,
                Some(wal),
                replayed.last_epoch,
            ));
            let server = ss_serve::QueryServer::bind_writable(
                &bind_addr,
                std::sync::Arc::clone(&snap),
                levels,
                mode,
                config,
            )
            .map_err(|e| e.to_string())?;
            (server, Some(snap))
        } else {
            let server = ss_serve::QueryServer::bind(&bind_addr, shared, levels, config)
                .map_err(|e| e.to_string())?;
            (server, None)
        };
    let addr = server.local_addr();
    println!("serving queries on {addr}");
    // Scripts (and our tests) learn the ephemeral port from this line or
    // the --addr-file, so neither may lag behind the listening socket.
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    if let Some(file) = args.flag_opt("addr-file") {
        std::fs::write(file, addr.to_string()).map_err(|e| e.to_string())?;
    }
    let served = server.join();
    println!("served {served} responses");
    if let Some(snap) = snapshot {
        // Clean shutdown: fold every published epoch into the store
        // (flush + fsync) and truncate the WAL. Goes through the Arc —
        // detached connection threads may still hold clones until their
        // clients hang up. The executors are joined, so no pins remain
        // and the checkpoint retry loop terminates.
        while !snap.checkpoint().map_err(|e| e.to_string())? {
            std::thread::yield_now();
        }
        println!("checkpointed store, wal truncated");
    }
    if let Some(tpath) = trace_out {
        // Flushes the buffered writer and closes the file; events already
        // in the ring stay readable for in-process consumers.
        ss_obs::trace::tracer().disable();
        println!("trace written to {tpath}");
    }
    metrics::emit_quiet(args, Some(&stats))
}

/// Builds the router topology from `--shards a:p,b:p,…` (shard-major:
/// with `--replicas N`, each consecutive group of N addresses is one
/// shard's replica set), plus an optional `--bounds 0,c1,…,T` explicit
/// partition (e.g. from `shard-split`); without `--bounds` the tile
/// space is split evenly.
fn parse_router_topology(
    args: &Args,
    num_tiles: usize,
) -> Result<ss_serve::RouterTopology, String> {
    use std::net::ToSocketAddrs as _;
    let spec = args
        .flag_opt("shards")
        .filter(|s| !s.is_empty())
        .ok_or("--router needs --shards (comma-separated shard server addresses)")?;
    let mut addrs = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        let addr = part
            .to_socket_addrs()
            .map_err(|e| format!("bad shard address {part:?}: {e}"))?
            .next()
            .ok_or(format!("shard address {part:?} resolved to nothing"))?;
        addrs.push(addr);
    }
    let replicas = match args.flag_opt("replicas") {
        Some(r) => r
            .parse::<usize>()
            .map_err(|e| format!("bad --replicas: {e}"))?,
        None => 1,
    };
    if replicas == 0 {
        return Err("--replicas must be at least 1".into());
    }
    if addrs.is_empty() || addrs.len() % replicas != 0 {
        return Err(format!(
            "--shards lists {} addresses, not divisible into replica sets of {replicas}",
            addrs.len()
        ));
    }
    let shards = addrs.len() / replicas;
    let map = match args.flag_opt("bounds").filter(|b| !b.is_empty()) {
        Some(b) => {
            let bounds = parse_list(b)?;
            let map = ss_storage::ShardMap::from_bounds(bounds, replicas)
                .map_err(|e| format!("bad --bounds: {e}"))?;
            if map.shards() != shards {
                return Err(format!(
                    "--bounds describes {} shards but --shards/--replicas give {shards}",
                    map.shards()
                ));
            }
            if map.num_tiles() != num_tiles {
                return Err(format!(
                    "--bounds covers {} tiles but the store has {num_tiles}",
                    map.num_tiles()
                ));
            }
            map
        }
        None => ss_storage::ShardMap::even(num_tiles, shards, replicas)
            .map_err(|e| format!("partitioning {num_tiles} tiles into {shards} shards: {e}"))?,
    };
    let grouped = addrs.chunks(replicas).map(<[_]>::to_vec).collect();
    ss_serve::RouterTopology::new(map, grouped)
}

/// `shard-split <store> --shards S [--replicas N] [--out FILE]`
///
/// Offline rebalancer: weighs every tile by its non-zero coefficient
/// count (the proxy for routed read work — zero coefficients contribute
/// nothing to a partial sum) and computes contiguous shard bounds that
/// even out total weight. Prints the even split next to the balanced one
/// and the `--bounds` list to paste into `serve --router`; `--out FILE`
/// writes that list for scripts.
pub fn shard_split(args: &Args) -> Result<(), String> {
    let path = args.pos(0, "store path")?;
    let shards = args
        .flag("shards")?
        .parse::<usize>()
        .map_err(|e| format!("bad --shards: {e}"))?;
    let replicas = match args.flag_opt("replicas") {
        Some(r) => r
            .parse::<usize>()
            .map_err(|e| format!("bad --replicas: {e}"))?,
        None => 1,
    };
    let mut ws = WsFile::open(Path::new(path))?;
    let map = ws.meta.tiling();
    let num_tiles = map.num_tiles();
    let slots = map.block_capacity();
    let mut weight = vec![0u64; num_tiles];
    for (t, w) in weight.iter_mut().enumerate() {
        for s in 0..slots {
            if ws.store.read_at(t, s) != 0.0 {
                *w += 1;
            }
        }
    }
    let even =
        ss_storage::ShardMap::even(num_tiles, shards, replicas).map_err(|e| e.to_string())?;
    let balanced = even
        .rebalanced(&weight, shards)
        .map_err(|e| e.to_string())?;
    let total: u64 = weight.iter().sum();
    println!("store   : {path}");
    println!("tiles   : {num_tiles} ({total} non-zero coefficients)");
    println!("shards  : {shards} x {replicas} replicas");
    let describe = |label: &str, m: &ss_storage::ShardMap| {
        println!("{label}:");
        for s in 0..m.shards() {
            let r = m.range(s);
            let w: u64 = weight[r.clone()].iter().sum();
            println!(
                "  shard {s}: tiles [{}, {}) weight {w} ({:.1}%)",
                r.start,
                r.end,
                100.0 * w as f64 / total.max(1) as f64
            );
        }
    };
    describe("even split", &even);
    describe("balanced split", &balanced);
    let bounds = balanced
        .bounds()
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join(",");
    println!("bounds  : {bounds}");
    println!("use with: serve <store> --router --shards … --replicas {replicas} --bounds {bounds}");
    if let Some(out) = args.flag_opt("out").filter(|o| !o.is_empty()) {
        std::fs::write(out, &bounds).map_err(|e| format!("writing {out}: {e}"))?;
        println!("bounds written to {out}");
    }
    metrics::emit_quiet(args, Some(&ws.stats))
}

/// What WAL recovery found on startup.
struct ReplaySummary {
    commits: usize,
    tiles: u64,
    last_epoch: u64,
}

/// Opens the `--wal` log (default `<store>.wal`) and replays any commits a
/// crash left in it onto `shared`. Passes `shared` through because replay
/// needs the store and the caller needs it back.
fn open_wal_and_replay<M: TilingMap, S: ss_storage::BlockStore>(
    args: &Args,
    store_path: &str,
    shared: ss_storage::SharedCoeffStore<M, S>,
) -> Result<
    (
        ss_storage::SharedCoeffStore<M, S>,
        ss_maintain::Wal,
        ReplaySummary,
    ),
    String,
> {
    let wal_path = match args.flag_opt("wal") {
        Some(p) if !p.is_empty() => std::path::PathBuf::from(p),
        _ => std::path::PathBuf::from(format!("{store_path}.wal")),
    };
    let (wal, records, scan) = ss_maintain::Wal::open(&wal_path).map_err(|e| e.to_string())?;
    if scan.torn_tail {
        println!("wal: dropped torn tail (incomplete final append)");
    }
    let tiles = ss_maintain::replay_records(&records, &shared);
    Ok((
        shared,
        wal,
        ReplaySummary {
            commits: records.len(),
            tiles,
            last_epoch: records.last().map(|r| r.epoch).unwrap_or(0),
        },
    ))
}

/// `wal-replay <store> [--wal FILE]`
///
/// Standalone crash recovery: replays every commit in the write-ahead log
/// onto the store (overwriting tile post-images in commit order — exactly
/// what a writable server does on startup), flushes and fsyncs the store,
/// then truncates the log. Idempotent: replaying an already-recovered
/// store rewrites the same bits, and an empty log is a no-op.
pub fn wal_replay(args: &Args) -> Result<(), String> {
    let path = args.pos(0, "store path")?;
    let ws = WsFile::open(Path::new(path))?;
    check_writable(&ws, "wal-replay")?;
    let stats = ws.stats.clone();
    let (map, blocks) = ws.store.into_parts();
    let shared = ss_storage::SharedCoeffStore::new(map, blocks, 1 << 10, 4, stats.clone());
    let (shared, mut wal, replayed) = open_wal_and_replay(args, path, shared)?;
    if replayed.commits == 0 {
        println!("wal is empty: nothing to replay");
    } else {
        shared.sync().map_err(|e| e.to_string())?;
        wal.reset().map_err(|e| e.to_string())?;
        println!(
            "replayed {} commits ({} tile images) up to epoch {}; store synced, wal truncated",
            replayed.commits, replayed.tiles, replayed.last_epoch
        );
    }
    metrics::emit_quiet(args, Some(&stats))
}

/// `query <addr> (--at i,j,… | --lo … --hi …) [--out FILE] [--trace N]`
///
/// One-shot client for a running `serve` instance. Prints the answer on
/// stdout; `--out` additionally writes it to a file (shortest-roundtrip
/// formatting, so reading it back yields the served `f64` bit for bit).
/// `--trace N` tags the request with trace id `N`: a tracing-enabled
/// server records its spans under that id (old or tracing-off servers
/// ignore the tag).
pub fn query(args: &Args) -> Result<(), String> {
    let addr = args.pos(0, "server address (host:port)")?;
    let mut client = ss_serve::Client::connect(addr).map_err(|e| e.to_string())?;
    if let Some(t) = args.flag_opt("trace") {
        let t: u64 = t.parse().map_err(|e| format!("bad --trace: {e}"))?;
        if t == 0 {
            return Err("--trace must be a positive integer (0 means untraced)".into());
        }
        client.set_trace(Some(t));
    }
    let value = if let Some(at) = args.flag_opt("at") {
        let pos = parse_list(at)?;
        client.point(&pos).map_err(|e| e.to_string())?
    } else {
        let lo = parse_list(args.flag("lo")?)?;
        let hi = parse_list(args.flag("hi")?)?;
        client.range_sum(&lo, &hi).map_err(|e| e.to_string())?
    };
    println!("{value}");
    if let Some(out) = args.flag_opt("out") {
        std::fs::write(out, format!("{value}\n")).map_err(|e| e.to_string())?;
    }
    metrics::emit_quiet(args, None)
}

/// `trace-dump <file> [--chrome OUT]`
///
/// Summarises an `ss-trace-v1` JSON-lines file (from `serve --trace-out`):
/// event counts by kind, distinct request traces, span begin/end matching,
/// per-span-name latency totals, and the epoch range covered by commit
/// events. `--chrome OUT` additionally converts the file to Chrome
/// `trace_event` JSON — open it at chrome://tracing or ui.perfetto.dev to
/// follow one request end to end.
pub fn trace_dump(args: &Args) -> Result<(), String> {
    let path = args.pos(0, "trace file (ss-trace-v1 JSON lines)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    use std::collections::{BTreeMap, HashMap, HashSet};
    let mut lines: Vec<ss_obs::json::Value> = Vec::new();
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut traces: HashSet<u64> = HashSet::new();
    let mut open_spans: HashMap<u64, String> = HashMap::new();
    // name -> (count, total ns, max ns) over completed spans
    let mut span_stats: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    let mut ended = 0u64;
    let mut epochs: Option<(u64, u64)> = None;
    for (no, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let line = no + 1;
        let v = ss_obs::json::parse(raw).map_err(|e| format!("{path}:{line}: {e}"))?;
        match v.get("schema").and_then(|s| s.as_str()) {
            Some(ss_obs::trace::TRACE_SCHEMA) => {}
            other => {
                return Err(format!(
                    "{path}:{line}: schema {other:?}, expected {:?}",
                    ss_obs::trace::TRACE_SCHEMA
                ))
            }
        }
        let ev = v
            .get("ev")
            .and_then(|e| e.as_str())
            .ok_or(format!("{path}:{line}: missing event tag"))?
            .to_string();
        if let Some(t) = v.get("trace").and_then(|t| t.as_u64()) {
            if t != 0 {
                traces.insert(t);
            }
        }
        let field = |k: &str| v.get(k).and_then(|x| x.as_u64());
        match ev.as_str() {
            "span_begin" => {
                let span =
                    field("span").ok_or(format!("{path}:{line}: span_begin without span"))?;
                let name = v
                    .get("name")
                    .and_then(|n| n.as_str())
                    .unwrap_or("?")
                    .to_string();
                open_spans.insert(span, name);
            }
            "span_end" => {
                let span = field("span").ok_or(format!("{path}:{line}: span_end without span"))?;
                let name = open_spans
                    .remove(&span)
                    .ok_or(format!("{path}:{line}: span_end without matching begin"))?;
                let dur = field("dur").unwrap_or(0);
                let e = span_stats.entry(name).or_insert((0, 0, 0));
                e.0 += 1;
                e.1 += dur;
                e.2 = e.2.max(dur);
                ended += 1;
            }
            "commit" | "checkpoint" | "wal_append" | "wal_fsync" => {
                if let Some(epoch) = field("epoch") {
                    epochs = Some(match epochs {
                        None => (epoch, epoch),
                        Some((lo, hi)) => (lo.min(epoch), hi.max(epoch)),
                    });
                }
            }
            _ => {}
        }
        *kinds.entry(ev).or_insert(0) += 1;
        lines.push(v);
    }
    println!("trace   : {path}");
    println!("events  : {}", lines.len());
    println!("traces  : {} distinct request trace ids", traces.len());
    println!(
        "spans   : {ended} completed, {} unmatched begin(s)",
        open_spans.len()
    );
    if let Some((lo, hi)) = epochs {
        println!("epochs  : {lo}..={hi} touched by the commit pipeline");
    }
    if !kinds.is_empty() {
        let by_kind: Vec<String> = kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
        println!("by kind : {}", by_kind.join(" "));
    }
    if !span_stats.is_empty() {
        println!(
            "{:<24} {:>8} {:>12} {:>12}",
            "span", "count", "total_us", "max_us"
        );
        for (name, (count, total, max)) in &span_stats {
            println!(
                "{name:<24} {count:>8} {:>12} {:>12}",
                total / 1_000,
                max / 1_000
            );
        }
    }
    if let Some(out) = args.flag_opt("chrome") {
        let chrome = ss_obs::trace::chrome_trace(&lines);
        std::fs::write(out, format!("{chrome}\n")).map_err(|e| format!("writing {out}: {e}"))?;
        println!("chrome trace written to {out} (open at chrome://tracing)");
    }
    Ok(())
}

/// `stream --data values.csv --k K [--buffer B]`
pub fn stream(args: &Args) -> Result<(), String> {
    let values = csv::read_values(Path::new(args.flag("data")?))?;
    let k = args
        .flag("k")?
        .parse::<usize>()
        .map_err(|e| e.to_string())?;
    let buffer = match args.flag_opt("buffer") {
        Some(b) => b.parse::<usize>().map_err(|e| e.to_string())?,
        None => 64,
    };
    if !ss_array::is_pow2(buffer) {
        return Err("buffer must be a power of two".into());
    }
    let max_levels = ss_array::log2_exact(ss_array::next_pow2(values.len()));
    let buf_levels = ss_array::log2_exact(buffer).min(max_levels);
    let mut s = ss_stream::BufferedStream::new(k, buf_levels, max_levels);
    for &x in &values {
        s.push(x);
    }
    println!(
        "processed {} items with {} coefficient ops ({:.2}/item)",
        values.len(),
        s.work(),
        s.work() as f64 / values.len() as f64
    );
    println!(
        "top {} coefficients by orthonormal magnitude:",
        s.entries().len().min(10)
    );
    for e in s.entries().iter().take(10) {
        let start = e.key.k << e.key.level;
        println!(
            "  level {:>2} items [{start}, {}]  value {:>10.4}  magnitude {:>10.2}",
            e.key.level,
            start + (1usize << e.key.level) - 1,
            e.value,
            e.magnitude()
        );
    }
    // No IoStats here — the registry still carries `stream.push_ns`.
    metrics::emit_quiet(args, None)
}

/// `synopsis <store> --k K --out syn.bin`
///
/// Builds a K-term synopsis of the store and writes it as a compact binary
/// blob a client can query offline (see [`query_synopsis`]).
pub fn synopsis(args: &Args) -> Result<(), String> {
    let path = args.pos(0, "store path")?;
    let k = args
        .flag("k")?
        .parse::<usize>()
        .map_err(|e| e.to_string())?;
    let out = args.flag("out")?;
    let mut ws = WsFile::open(Path::new(path))?;
    let syn = ss_query::StoredSynopsis::build(&mut ws.store, &ws.meta.levels, k);
    let bytes = syn.to_bytes();
    std::fs::write(out, &bytes).map_err(|e| e.to_string())?;
    println!(
        "wrote {}-term synopsis ({} bytes, {:.3}% of the cube) to {out}",
        syn.retained(),
        bytes.len(),
        100.0 * syn.retained() as f64 / ws.meta.dims().iter().product::<usize>() as f64
    );
    metrics::emit_quiet(args, Some(&ws.stats))
}

/// `asksyn <syn.bin> (--at i,j,… | --lo … --hi …)`
///
/// Answers approximate queries from a synopsis file — no store needed.
pub fn query_synopsis(args: &Args) -> Result<(), String> {
    let path = args.pos(0, "synopsis path")?;
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    let syn = ss_query::StoredSynopsis::from_bytes(&bytes)?;
    if let Some(at) = args.flag_opt("at") {
        let pos = parse_list(at)?;
        println!("{}", syn.point(&pos));
        return metrics::emit_quiet(args, None);
    }
    let lo = parse_list(args.flag("lo")?)?;
    let hi = parse_list(args.flag("hi")?)?;
    println!("{}", syn.range_sum(&lo, &hi));
    metrics::emit_quiet(args, None)
}

fn check_rank(meta: &Meta, rank: usize) -> Result<(), String> {
    if rank != meta.levels.len() {
        Err(format!(
            "expected {} coordinates, got {rank}",
            meta.levels.len()
        ))
    } else {
        Ok(())
    }
}
