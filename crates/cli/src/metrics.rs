//! Metrics plumbing shared by every subcommand.
//!
//! Every command accepts `--metrics-out FILE`: the store's [`IoStats`]
//! counters are folded into the process-wide [`ss_obs`] registry and the
//! whole registry — I/O counters, block-latency histograms, transform
//! phase spans, query/stream timings — is written as one `ss-metrics-v1`
//! JSON snapshot. Without the flag, commands keep their traditional
//! one-line `[blocks: …]` stderr summary. `ingest` additionally accepts
//! `--metrics-port N` to expose the registry live (Prometheus text /
//! JSON) while the transform runs.

use crate::args::Args;
use ss_storage::IoStats;

/// Folds `stats` into the global registry, then emits: the JSON snapshot
/// to `--metrics-out FILE` when the flag is present, otherwise the
/// one-line counter summary on stderr.
pub fn emit(args: &Args, stats: &IoStats) -> Result<(), String> {
    stats.publish(&ss_obs::global());
    match args.flag_opt("metrics-out") {
        Some(path) => write_snapshot(path),
        None => {
            eprintln!("[{}]", stats.snapshot());
            Ok(())
        }
    }
}

/// Like [`emit`] for commands that either have no [`IoStats`] (`stream`)
/// or never printed a counter line (`create`, `synopsis`): honours
/// `--metrics-out` and stays silent otherwise.
pub fn emit_quiet(args: &Args, stats: Option<&IoStats>) -> Result<(), String> {
    if let Some(stats) = stats {
        stats.publish(&ss_obs::global());
    }
    match args.flag_opt("metrics-out") {
        Some(path) => write_snapshot(path),
        None => Ok(()),
    }
}

fn write_snapshot(path: &str) -> Result<(), String> {
    let mut json = ss_obs::global().to_json();
    json.push('\n');
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("metrics written to {path}");
    Ok(())
}

/// Starts a background metrics endpoint when `--metrics-port N` is given.
/// Keep the returned guard alive for as long as the endpoint should serve;
/// it shuts down on drop. The endpoint runs windowed: a sliding interval
/// of recent histogram baselines (6 ticks of 10 s — roughly the last
/// minute) backs the `recent` p50/p99 views next to the lifetime numbers.
pub fn maybe_serve(args: &Args) -> Result<Option<ss_obs::MetricsServer>, String> {
    let Some(port) = args.flag_opt("metrics-port") else {
        return Ok(None);
    };
    let port: u16 = port
        .parse()
        .map_err(|e| format!("bad --metrics-port: {e}"))?;
    let window =
        ss_obs::HistogramWindow::new(ss_obs::global(), std::time::Duration::from_secs(10), 6);
    let server = ss_obs::MetricsServer::bind_windowed(
        &format!("127.0.0.1:{port}"),
        ss_obs::global(),
        window,
    )
    .map_err(|e| format!("binding metrics port: {e}"))?;
    eprintln!("metrics: serving on http://{}/metrics", server.local_addr());
    Ok(Some(server))
}
