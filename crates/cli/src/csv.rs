//! Plain-text value I/O: one row per line, comma-separated cells, row-major
//! over the trailing axes. A file is just a flat stream of `f64`s.

use ss_array::{NdArray, Shape};
use std::path::Path;

/// Reads a flat stream of numbers (commas and/or newlines as separators).
pub fn read_values(path: &Path) -> Result<Vec<f64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        for cell in line.split(',') {
            let cell = cell.trim();
            if cell.is_empty() {
                continue;
            }
            out.push(
                cell.parse::<f64>()
                    .map_err(|_| format!("line {}: not a number: {cell}", lineno + 1))?,
            );
        }
    }
    Ok(out)
}

/// Reads a file into an array of the given dims (row-major).
pub fn read_array(path: &Path, dims: &[usize]) -> Result<NdArray<f64>, String> {
    let values = read_values(path)?;
    let shape = Shape::new(dims);
    if values.len() != shape.len() {
        return Err(format!(
            "{} holds {} values, expected {} for shape {shape}",
            path.display(),
            values.len(),
            shape.len()
        ));
    }
    Ok(NdArray::from_vec(shape, values))
}

/// Writes an array as rows of the last axis.
pub fn write_array(array: &NdArray<f64>) -> String {
    let dims = array.shape().dims();
    let row = dims[dims.len() - 1];
    let mut out = String::new();
    for (i, v) in array.as_slice().iter().enumerate() {
        out.push_str(&format!("{v}"));
        if (i + 1) % row == 0 {
            out.push('\n');
        } else {
            out.push(',');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ss_csv_{name}_{}", std::process::id()))
    }

    #[test]
    fn read_write_roundtrip() {
        let a = NdArray::from_fn(Shape::new(&[2, 3]), |idx| {
            (idx[0] * 3 + idx[1]) as f64 * 0.5
        });
        let text = write_array(&a);
        let path = tmp("roundtrip");
        std::fs::write(&path, &text).unwrap();
        let back = read_array(&path, &[2, 3]).unwrap();
        assert_eq!(a, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let path = tmp("comments");
        std::fs::write(&path, "# header\n1, 2\n\n3,4 # trailing\n").unwrap();
        assert_eq!(read_values(&path).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let path = tmp("mismatch");
        std::fs::write(&path, "1,2,3\n").unwrap();
        assert!(read_array(&path, &[2, 2]).is_err());
        std::fs::remove_file(&path).ok();
    }
}
