//! End-to-end acceptance tests for the observability surface: a real
//! `shiftsplit` binary ingesting a 256x256 dataset must produce a
//! populated `ss-metrics-v1` snapshot, and `serve-metrics` must answer a
//! plain TCP client with Prometheus text and JSON.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_shiftsplit"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ss_metrics_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_ok(cmd: &mut Command) {
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Writes a `side x side` CSV of deterministic values.
fn write_csv(path: &Path, side: usize) {
    let rows: Vec<String> = (0..side)
        .map(|r| {
            (0..side)
                .map(|c| (((r * 31 + c * 7) % 101) as f64).to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    std::fs::write(path, rows.join("\n")).unwrap();
}

fn histogram<'v>(snapshot: &'v ss_obs::json::Value, name: &str) -> &'v ss_obs::json::Value {
    snapshot
        .get("histograms")
        .unwrap()
        .get(name)
        .unwrap_or_else(|| panic!("histogram {name:?} missing from snapshot"))
}

fn field(h: &ss_obs::json::Value, key: &str) -> u64 {
    h.get(key).unwrap().as_u64().unwrap()
}

#[test]
fn parallel_ingest_writes_a_populated_metrics_snapshot() {
    let dir = tmp_dir("ingest");
    let store = dir.join("t.ws");
    let csv = dir.join("data.csv");
    let metrics = dir.join("m.json");
    write_csv(&csv, 256);

    run_ok(bin().args(["create", store.to_str().unwrap(), "--levels", "8,8"]));
    run_ok(bin().args([
        "ingest",
        store.to_str().unwrap(),
        "--data",
        csv.to_str().unwrap(),
        "--workers",
        "4",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]));

    let text = std::fs::read_to_string(&metrics).unwrap();
    let snap = ss_obs::json::parse(&text).unwrap();
    assert_eq!(snap.get("schema").unwrap().as_str(), Some("ss-metrics-v1"));

    // Block-I/O latency histograms: populated, nonzero quantiles.
    for name in ["storage.block_read_ns", "storage.block_write_ns"] {
        let h = histogram(&snap, name);
        assert!(field(h, "count") > 0, "{name}: empty");
        assert!(field(h, "p50") > 0, "{name}: zero p50");
        assert!(field(h, "p99") > 0, "{name}: zero p99");
        assert!(field(h, "p99") <= field(h, "max"), "{name}: p99 > max");
    }

    // Phase attribution from the parallel transform driver.
    for name in [
        "transform.read_ns",
        "transform.compute_ns",
        "transform.writeback_ns",
        "transform.worker_busy_ns",
    ] {
        assert!(field(histogram(&snap, name), "count") > 0, "{name}: empty");
    }
    assert_eq!(
        snap.get("gauges")
            .unwrap()
            .get("transform.workers")
            .unwrap()
            .as_u64(),
        Some(4)
    );

    // The full IoSnapshot counter set is folded in, with real traffic.
    let counters = snap.get("counters").unwrap();
    for name in [
        "io.block_reads",
        "io.block_writes",
        "io.coeff_reads",
        "io.coeff_writes",
        "io.pool_hits",
        "io.pool_misses",
        "io.pool_evictions",
        "io.pool_writebacks",
    ] {
        assert!(counters.get(name).is_some(), "counter {name:?} missing");
    }
    assert!(counters.get("io.block_writes").unwrap().as_u64().unwrap() > 0);
    assert!(counters.get("io.coeff_writes").unwrap().as_u64().unwrap() > 0);

    // Shard-lock wait histograms from the parallel pool.
    assert!(field(histogram(&snap, "pool.shard_lock_wait_ns"), "count") > 0);

    std::fs::remove_dir_all(&dir).ok();
}

fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn serve_metrics_answers_a_plain_tcp_client() {
    let dir = tmp_dir("serve");
    let store = dir.join("s.ws");
    let csv = dir.join("data.csv");
    write_csv(&csv, 16);
    run_ok(bin().args(["create", store.to_str().unwrap(), "--levels", "4,4"]));
    run_ok(bin().args([
        "ingest",
        store.to_str().unwrap(),
        "--data",
        csv.to_str().unwrap(),
    ]));

    let mut child = bin()
        .args([
            "serve-metrics",
            "--port",
            "0",
            "--requests",
            "2",
            store.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let first = lines.next().unwrap().unwrap();
    let addr = first
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first}"))
        .to_string();

    // Request 1: Prometheus text exposition.
    let text = http_get(&addr, "/metrics");
    assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
    assert!(text.contains("text/plain"), "{text}");
    assert!(text.contains("# TYPE ss_io_block_reads counter"), "{text}");
    assert!(text.contains("ss_io_block_reads "), "{text}");

    // Request 2: the JSON snapshot on *.json paths.
    let json_resp = http_get(&addr, "/metrics.json");
    let body = json_resp.split("\r\n\r\n").nth(1).unwrap();
    let snap = ss_obs::json::parse(body).unwrap();
    assert_eq!(snap.get("schema").unwrap().as_str(), Some("ss-metrics-v1"));
    assert!(snap
        .get("counters")
        .unwrap()
        .get("io.block_reads")
        .is_some());

    // The request budget makes the server exit cleanly.
    let status = child.wait().unwrap();
    assert!(status.success());
    std::fs::remove_dir_all(&dir).ok();
}
