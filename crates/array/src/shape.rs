//! Row-major shapes and linear/multi index conversion.

use std::fmt;

/// A d-dimensional extent, stored as the size of each axis.
///
/// All arrays in this workspace are row-major: the **last** axis varies
/// fastest. `Shape` also memoises the row-major strides so repeated index
/// conversions stay cheap.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
    strides: Vec<usize>,
    len: usize,
}

impl Shape {
    /// Builds a shape from per-axis sizes.
    ///
    /// # Panics
    ///
    /// Panics when `dims` is empty or any axis has size zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "Shape::new: zero-dimensional shape");
        assert!(
            dims.iter().all(|&d| d > 0),
            "Shape::new: axis of size zero in {dims:?}"
        );
        let mut strides = vec![1usize; dims.len()];
        for axis in (0..dims.len().saturating_sub(1)).rev() {
            strides[axis] = strides[axis + 1] * dims[axis + 1];
        }
        let len = dims.iter().product();
        Shape {
            dims: dims.to_vec(),
            strides,
            len,
        }
    }

    /// A hypercube shape: `d` axes of size `n` each.
    pub fn cube(d: usize, n: usize) -> Self {
        Shape::new(&vec![n; d])
    }

    /// Number of axes.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Per-axis sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row-major strides.
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Size of axis `axis`.
    #[inline]
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the shape holds no cells (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` iff every axis size is a power of two.
    pub fn is_dyadic(&self) -> bool {
        self.dims.iter().all(|&d| crate::is_pow2(d))
    }

    /// Per-axis `log2` of the sizes.
    ///
    /// # Panics
    ///
    /// Panics when the shape is not dyadic.
    pub fn levels(&self) -> Vec<u32> {
        self.dims.iter().map(|&d| crate::log2_exact(d)).collect()
    }

    /// Converts a multi-index to the row-major linear offset.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the index rank mismatches or any
    /// coordinate is out of bounds.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0usize;
        for (axis, &i) in idx.iter().enumerate() {
            debug_assert!(
                i < self.dims[axis],
                "index {i} out of bounds for axis {axis} (size {})",
                self.dims[axis]
            );
            off += i * self.strides[axis];
        }
        off
    }

    /// Converts a row-major linear offset back to a multi-index.
    #[inline]
    pub fn unoffset(&self, mut off: usize) -> Vec<usize> {
        debug_assert!(
            off < self.len,
            "offset {off} out of bounds (len {})",
            self.len
        );
        let mut idx = vec![0usize; self.dims.len()];
        for axis in 0..self.dims.len() {
            idx[axis] = off / self.strides[axis];
            off %= self.strides[axis];
        }
        idx
    }

    /// Writes the multi-index for `off` into `out` without allocating.
    #[inline]
    pub fn unoffset_into(&self, mut off: usize, out: &mut [usize]) {
        debug_assert_eq!(out.len(), self.dims.len());
        for axis in 0..self.dims.len() {
            out[axis] = off / self.strides[axis];
            off %= self.strides[axis];
        }
    }

    /// `true` iff `idx` lies inside the shape.
    #[inline]
    pub fn contains(&self, idx: &[usize]) -> bool {
        idx.len() == self.dims.len() && idx.iter().zip(&self.dims).all(|(&i, &d)| i < d)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for d in &self.dims {
            if !first {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), &[12, 4, 1]);
        assert_eq!(s.len(), 24);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[3, 5, 7]);
        for off in 0..s.len() {
            let idx = s.unoffset(off);
            assert_eq!(s.offset(&idx), off);
        }
    }

    #[test]
    fn unoffset_into_matches_unoffset() {
        let s = Shape::new(&[4, 4, 4]);
        let mut buf = [0usize; 3];
        for off in 0..s.len() {
            s.unoffset_into(off, &mut buf);
            assert_eq!(buf.to_vec(), s.unoffset(off));
        }
    }

    #[test]
    fn cube_and_dyadic() {
        let s = Shape::cube(3, 8);
        assert_eq!(s.dims(), &[8, 8, 8]);
        assert!(s.is_dyadic());
        assert_eq!(s.levels(), vec![3, 3, 3]);
        assert!(!Shape::new(&[8, 6]).is_dyadic());
    }

    #[test]
    fn contains_checks_bounds() {
        let s = Shape::new(&[2, 2]);
        assert!(s.contains(&[1, 1]));
        assert!(!s.contains(&[2, 0]));
        assert!(!s.contains(&[0]));
    }

    #[test]
    #[should_panic]
    fn rejects_zero_axis() {
        Shape::new(&[4, 0]);
    }

    #[test]
    fn one_dimensional() {
        let s = Shape::new(&[16]);
        assert_eq!(s.offset(&[7]), 7);
        assert_eq!(s.unoffset(9), vec![9]);
    }
}
