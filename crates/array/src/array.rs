//! A dense row-major multidimensional array.

use crate::index::MultiIndexIter;
use crate::shape::Shape;
use std::ops::{Index, IndexMut};

/// Dense row-major array over a [`Shape`].
///
/// `NdArray` backs every in-memory chunk in the workspace: untransformed data
/// chunks, transformed chunks, and reconstructed regions. It is generic over
/// the element type but used almost exclusively with `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct NdArray<T = f64> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Copy + Default> NdArray<T> {
    /// Creates an array filled with `T::default()`.
    pub fn zeros(shape: Shape) -> Self {
        let len = shape.len();
        NdArray {
            shape,
            data: vec![T::default(); len],
        }
    }

    /// Creates an array from existing row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "NdArray::from_vec: data length {} does not match shape {shape:?}",
            data.len()
        );
        NdArray { shape, data }
    }

    /// Creates an array by evaluating `f` at every multi-index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for idx in MultiIndexIter::new(shape.dims()) {
            data.push(f(&idx));
        }
        NdArray { shape, data }
    }

    /// The array's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff the array holds no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the array, returning the backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Cell value at `idx`.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> T {
        self.data[self.shape.offset(idx)]
    }

    /// Sets the cell at `idx`.
    #[inline]
    pub fn set(&mut self, idx: &[usize], value: T) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// Copies the rectangular region starting at `origin` with extents
    /// `sub.shape()` **out of** `self` into `sub`.
    ///
    /// This is the chunk-extraction primitive for out-of-core transforms.
    ///
    /// # Panics
    ///
    /// Panics when the region does not fit inside `self`.
    pub fn extract_into(&self, origin: &[usize], sub: &mut NdArray<T>) {
        let d = self.shape.ndim();
        assert_eq!(origin.len(), d);
        assert_eq!(sub.shape.ndim(), d);
        for axis in 0..d {
            assert!(
                origin[axis] + sub.shape.dim(axis) <= self.shape.dim(axis),
                "extract: region out of bounds on axis {axis}"
            );
        }
        copy_region(
            &self.data,
            &self.shape,
            origin,
            &mut sub.data,
            &sub.shape.clone(),
            &vec![0; d],
            sub.shape.dims().to_vec().as_slice(),
        );
    }

    /// Returns a freshly allocated copy of the rectangular region at `origin`
    /// with per-axis extents `extents`.
    pub fn extract(&self, origin: &[usize], extents: &[usize]) -> NdArray<T> {
        let mut out = NdArray::zeros(Shape::new(extents));
        self.extract_into(origin, &mut out);
        out
    }

    /// Copies `sub` **into** `self` at `origin` (overwriting).
    ///
    /// # Panics
    ///
    /// Panics when the region does not fit inside `self`.
    pub fn insert(&mut self, origin: &[usize], sub: &NdArray<T>) {
        let d = self.shape.ndim();
        assert_eq!(origin.len(), d);
        assert_eq!(sub.shape.ndim(), d);
        for axis in 0..d {
            assert!(
                origin[axis] + sub.shape.dim(axis) <= self.shape.dim(axis),
                "insert: region out of bounds on axis {axis}"
            );
        }
        copy_region(
            &sub.data,
            &sub.shape,
            &vec![0; d],
            &mut self.data,
            &self.shape.clone(),
            origin,
            sub.shape.dims().to_vec().as_slice(),
        );
    }
}

impl NdArray<f64> {
    /// Adds `other` element-wise (shapes must match).
    pub fn add_assign(&mut self, other: &NdArray<f64>) {
        assert_eq!(self.shape, other.shape, "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Maximum absolute difference against `other` (shapes must match).
    pub fn max_abs_diff(&self, other: &NdArray<f64>) -> f64 {
        assert_eq!(self.shape, other.shape, "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Sum of all cells.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Sum of the cells in the rectangular region `[lo, hi]` (inclusive).
    pub fn region_sum(&self, lo: &[usize], hi: &[usize]) -> f64 {
        assert_eq!(lo.len(), self.shape.ndim());
        assert_eq!(hi.len(), self.shape.ndim());
        let extents: Vec<usize> = lo
            .iter()
            .zip(hi)
            .map(|(&l, &h)| {
                assert!(h >= l, "region_sum: hi < lo");
                h - l + 1
            })
            .collect();
        let mut sum = 0.0;
        let mut idx = vec![0usize; lo.len()];
        for rel in MultiIndexIter::new(&extents) {
            for (axis, &r) in rel.iter().enumerate() {
                idx[axis] = lo[axis] + r;
            }
            sum += self.get(&idx);
        }
        sum
    }
}

/// Copies an `extents`-sized region from `src` (at `src_origin`) to `dst`
/// (at `dst_origin`), exploiting contiguity of the innermost axis.
fn copy_region<T: Copy>(
    src: &[T],
    src_shape: &Shape,
    src_origin: &[usize],
    dst: &mut [T],
    dst_shape: &Shape,
    dst_origin: &[usize],
    extents: &[usize],
) {
    let d = extents.len();
    let row = extents[d - 1];
    // Iterate over all outer coordinates; memcpy the innermost rows.
    let outer: Vec<usize> = extents[..d - 1].to_vec();
    let mut src_idx = src_origin.to_vec();
    let mut dst_idx = dst_origin.to_vec();
    if outer.is_empty() || outer.iter().all(|&e| e > 0) {
        for rel in MultiIndexIter::new(&outer) {
            for (axis, &r) in rel.iter().enumerate() {
                src_idx[axis] = src_origin[axis] + r;
                dst_idx[axis] = dst_origin[axis] + r;
            }
            let s0 = src_shape.offset(&src_idx);
            let d0 = dst_shape.offset(&dst_idx);
            dst[d0..d0 + row].copy_from_slice(&src[s0..s0 + row]);
        }
    }
}

impl<T: Copy + Default> Index<&[usize]> for NdArray<T> {
    type Output = T;
    #[inline]
    fn index(&self, idx: &[usize]) -> &T {
        &self.data[self.shape.offset(idx)]
    }
}

impl<T: Copy + Default> IndexMut<&[usize]> for NdArray<T> {
    #[inline]
    fn index_mut(&mut self, idx: &[usize]) -> &mut T {
        let off = self.shape.offset(idx);
        &mut self.data[off]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(shape: &Shape) -> NdArray<f64> {
        let mut counter = 0.0;
        NdArray::from_fn(shape.clone(), |_| {
            counter += 1.0;
            counter
        })
    }

    #[test]
    fn from_fn_row_major_order() {
        let a = iota(&Shape::new(&[2, 3]));
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.get(&[1, 0]), 4.0);
    }

    #[test]
    fn extract_and_insert_roundtrip() {
        let a = iota(&Shape::new(&[4, 4]));
        let sub = a.extract(&[1, 2], &[2, 2]);
        assert_eq!(sub.as_slice(), &[7.0, 8.0, 11.0, 12.0]);
        let mut b = NdArray::<f64>::zeros(Shape::new(&[4, 4]));
        b.insert(&[1, 2], &sub);
        assert_eq!(b.get(&[1, 2]), 7.0);
        assert_eq!(b.get(&[2, 3]), 12.0);
        assert_eq!(b.get(&[0, 0]), 0.0);
    }

    #[test]
    fn extract_full_is_identity() {
        let a = iota(&Shape::new(&[2, 2, 2]));
        let sub = a.extract(&[0, 0, 0], &[2, 2, 2]);
        assert_eq!(sub, a);
    }

    #[test]
    fn extract_1d() {
        let a = iota(&Shape::new(&[8]));
        let sub = a.extract(&[2], &[4]);
        assert_eq!(sub.as_slice(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn region_sum_matches_naive() {
        let a = iota(&Shape::new(&[3, 4]));
        // region rows 1..=2, cols 1..=3
        let mut expect = 0.0;
        for r in 1..=2 {
            for c in 1..=3 {
                expect += a.get(&[r, c]);
            }
        }
        assert_eq!(a.region_sum(&[1, 1], &[2, 3]), expect);
    }

    #[test]
    fn add_assign_elementwise() {
        let mut a = iota(&Shape::new(&[2, 2]));
        let b = iota(&Shape::new(&[2, 2]));
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    #[should_panic]
    fn insert_out_of_bounds_panics() {
        let mut a = NdArray::<f64>::zeros(Shape::new(&[4, 4]));
        let sub = NdArray::<f64>::zeros(Shape::new(&[2, 2]));
        a.insert(&[3, 3], &sub);
    }

    #[test]
    fn index_operators() {
        let mut a = NdArray::<f64>::zeros(Shape::new(&[2, 2]));
        a[&[0, 1][..]] = 5.0;
        assert_eq!(a[&[0, 1][..]], 5.0);
    }
}
