//! Odometer-style iteration over rectangular multi-index domains.

/// Iterates over all multi-indices of a rectangular domain in row-major
/// order (last axis fastest).
///
/// An empty extent list yields exactly one empty index (the 0-dimensional
/// point), which makes it convenient as the "outer loop" of region copies.
///
/// ```
/// use ss_array::MultiIndexIter;
/// let all: Vec<Vec<usize>> = MultiIndexIter::new(&[2, 2]).collect();
/// assert_eq!(all, vec![vec![0,0], vec![0,1], vec![1,0], vec![1,1]]);
/// ```
pub struct MultiIndexIter {
    extents: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl MultiIndexIter {
    /// Creates an iterator over `[0, extents[0]) x ... x [0, extents[d-1])`.
    ///
    /// If any extent is zero the iterator is immediately exhausted.
    pub fn new(extents: &[usize]) -> Self {
        let done = extents.contains(&0);
        MultiIndexIter {
            extents: extents.to_vec(),
            current: vec![0; extents.len()],
            done,
        }
    }
}

impl Iterator for MultiIndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let item = self.current.clone();
        // Advance the odometer from the last axis.
        let mut axis = self.extents.len();
        loop {
            if axis == 0 {
                self.done = true;
                break;
            }
            axis -= 1;
            self.current[axis] += 1;
            if self.current[axis] < self.extents[axis] {
                break;
            }
            self.current[axis] = 0;
        }
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        let total: usize = self.extents.iter().product();
        // How many indices have been emitted so far.
        let mut emitted = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.extents.len()).rev() {
            emitted += self.current[axis] * stride;
            stride *= self.extents[axis];
        }
        let remaining = total - emitted;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for MultiIndexIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_domain_in_row_major_order() {
        let got: Vec<Vec<usize>> = MultiIndexIter::new(&[2, 3]).collect();
        let want = vec![
            vec![0, 0],
            vec![0, 1],
            vec![0, 2],
            vec![1, 0],
            vec![1, 1],
            vec![1, 2],
        ];
        assert_eq!(got, want);
    }

    #[test]
    fn zero_dimensional_yields_one_empty_index() {
        let got: Vec<Vec<usize>> = MultiIndexIter::new(&[]).collect();
        assert_eq!(got, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn zero_extent_yields_nothing() {
        assert_eq!(MultiIndexIter::new(&[3, 0]).count(), 0);
    }

    #[test]
    fn size_hint_is_exact() {
        let mut it = MultiIndexIter::new(&[3, 4]);
        let mut remaining = 12;
        assert_eq!(it.len(), remaining);
        while let Some(_) = it.next() {
            remaining -= 1;
            assert_eq!(it.size_hint(), (remaining, Some(remaining)));
        }
    }

    #[test]
    fn one_dimensional() {
        let got: Vec<Vec<usize>> = MultiIndexIter::new(&[4]).collect();
        assert_eq!(got.len(), 4);
        assert_eq!(got[3], vec![3]);
    }
}
