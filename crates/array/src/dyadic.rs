//! Dyadic intervals and ranges (Definition 3 of the paper).
//!
//! A *dyadic interval* of a domain of size `2^n` is `[k·2^j, (k+1)·2^j − 1]`
//! for some level `j ∈ [0, n]` and translation `k ∈ [0, 2^{n−j})`. Dyadic
//! intervals are exactly the support intervals of Haar coefficients
//! (Property 1), which is why SHIFT/SPLIT operate on them.

use crate::index::MultiIndexIter;

/// A dyadic interval `[k·2^j, (k+1)·2^j − 1]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DyadicInterval {
    /// Level: the interval has length `2^level`.
    pub level: u32,
    /// Translation: the interval starts at `translation << level`.
    pub translation: usize,
}

impl DyadicInterval {
    /// Interval of length `2^level` starting at `translation · 2^level`.
    pub fn new(level: u32, translation: usize) -> Self {
        DyadicInterval { level, translation }
    }

    /// First covered position.
    #[inline]
    pub fn start(&self) -> usize {
        self.translation << self.level
    }

    /// Last covered position (inclusive).
    #[inline]
    pub fn end(&self) -> usize {
        ((self.translation + 1) << self.level) - 1
    }

    /// Interval length, `2^level`.
    #[inline]
    pub fn len(&self) -> usize {
        1usize << self.level
    }

    /// Dyadic intervals are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` iff `self` completely contains `other`.
    pub fn covers(&self, other: &DyadicInterval) -> bool {
        self.level >= other.level
            && (other.translation >> (self.level - other.level)) == self.translation
    }

    /// The parent dyadic interval (twice the length).
    pub fn parent(&self) -> DyadicInterval {
        DyadicInterval::new(self.level + 1, self.translation >> 1)
    }

    /// The two child halves, or `None` when `level == 0`.
    pub fn children(&self) -> Option<(DyadicInterval, DyadicInterval)> {
        if self.level == 0 {
            None
        } else {
            Some((
                DyadicInterval::new(self.level - 1, self.translation << 1),
                DyadicInterval::new(self.level - 1, (self.translation << 1) | 1),
            ))
        }
    }

    /// `true` iff `pos` lies inside the interval.
    #[inline]
    pub fn contains(&self, pos: usize) -> bool {
        (pos >> self.level) == self.translation
    }
}

/// A multidimensional dyadic range: the cross product of one dyadic interval
/// per axis.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DyadicRange {
    /// One interval per axis.
    pub axes: Vec<DyadicInterval>,
}

impl DyadicRange {
    /// Builds a range from per-axis intervals.
    pub fn new(axes: Vec<DyadicInterval>) -> Self {
        assert!(!axes.is_empty(), "DyadicRange: zero axes");
        DyadicRange { axes }
    }

    /// A cubic range: every axis has the same `level`, translations given
    /// per axis.
    pub fn cube(level: u32, translations: &[usize]) -> Self {
        DyadicRange::new(
            translations
                .iter()
                .map(|&t| DyadicInterval::new(level, t))
                .collect(),
        )
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.axes.len()
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.len()).product()
    }

    /// Dyadic ranges are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Per-axis start coordinates.
    pub fn origin(&self) -> Vec<usize> {
        self.axes.iter().map(|a| a.start()).collect()
    }

    /// Per-axis extents.
    pub fn extents(&self) -> Vec<usize> {
        self.axes.iter().map(|a| a.len()).collect()
    }

    /// `true` iff all axes share one level (a hypercube).
    pub fn is_cubic(&self) -> bool {
        self.axes.windows(2).all(|w| w[0].level == w[1].level)
    }
}

/// Greedily decomposes the inclusive interval `[lo, hi]` into the minimal
/// sequence of maximal disjoint dyadic intervals.
///
/// This is the classical decomposition used to reduce arbitrary range
/// operations (partial reconstruction, selections) to the dyadic case: at
/// most `2·log₂(hi−lo+1) + O(1)` pieces are produced.
///
/// ```
/// use ss_array::decompose_interval;
/// let parts = decompose_interval(3, 9);
/// let total: usize = parts.iter().map(|p| p.len()).sum();
/// assert_eq!(total, 7);
/// assert_eq!(parts[0].start(), 3);
/// ```
pub fn decompose_interval(lo: usize, hi: usize) -> Vec<DyadicInterval> {
    assert!(lo <= hi, "decompose_interval: lo > hi");
    let mut parts = Vec::new();
    let mut pos = lo;
    while pos <= hi {
        // Largest level allowed by alignment of `pos`.
        let align = if pos == 0 {
            usize::BITS - 1
        } else {
            pos.trailing_zeros()
        };
        // Largest level allowed by the remaining length.
        let remaining = hi - pos + 1;
        let fit = usize::BITS - 1 - remaining.leading_zeros(); // floor(log2(remaining))
        let level = align.min(fit);
        parts.push(DyadicInterval::new(level, pos >> level));
        pos += 1usize << level;
    }
    parts
}

/// Decomposes an arbitrary axis-aligned inclusive box `[lo, hi]` into
/// disjoint dyadic ranges (the cross product of per-axis decompositions).
pub fn decompose_range(lo: &[usize], hi: &[usize]) -> Vec<DyadicRange> {
    assert_eq!(lo.len(), hi.len());
    let per_axis: Vec<Vec<DyadicInterval>> = lo
        .iter()
        .zip(hi)
        .map(|(&l, &h)| decompose_interval(l, h))
        .collect();
    let counts: Vec<usize> = per_axis.iter().map(|v| v.len()).collect();
    let mut out = Vec::new();
    for choice in MultiIndexIter::new(&counts) {
        out.push(DyadicRange::new(
            choice
                .iter()
                .enumerate()
                .map(|(axis, &c)| per_axis[axis][c])
                .collect(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_geometry() {
        let i = DyadicInterval::new(3, 2);
        assert_eq!(i.start(), 16);
        assert_eq!(i.end(), 23);
        assert_eq!(i.len(), 8);
        assert!(i.contains(16));
        assert!(i.contains(23));
        assert!(!i.contains(24));
    }

    #[test]
    fn parent_child_relations() {
        let i = DyadicInterval::new(2, 3); // [12, 15]
        assert_eq!(i.parent(), DyadicInterval::new(3, 1)); // [8, 15]
        let (l, r) = i.children().unwrap();
        assert_eq!(l, DyadicInterval::new(1, 6)); // [12, 13]
        assert_eq!(r, DyadicInterval::new(1, 7)); // [14, 15]
        assert!(i.parent().covers(&i));
        assert!(i.covers(&l) && i.covers(&r));
        assert!(!l.covers(&r));
        assert!(DyadicInterval::new(0, 5).children().is_none());
    }

    #[test]
    fn decompose_covers_exactly() {
        for lo in 0usize..20 {
            for hi in lo..40 {
                let parts = decompose_interval(lo, hi);
                // Disjoint, sorted, covering [lo, hi].
                let mut pos = lo;
                for p in &parts {
                    assert_eq!(p.start(), pos);
                    pos = p.end() + 1;
                }
                assert_eq!(pos, hi + 1);
            }
        }
    }

    #[test]
    fn decompose_is_logarithmic() {
        let parts = decompose_interval(1, (1 << 20) - 2);
        assert!(parts.len() <= 2 * 20, "got {} parts", parts.len());
    }

    #[test]
    fn aligned_interval_is_single_piece() {
        let parts = decompose_interval(8, 15);
        assert_eq!(parts, vec![DyadicInterval::new(3, 1)]);
    }

    #[test]
    fn decompose_range_counts() {
        let ranges = decompose_range(&[3, 0], &[9, 7]);
        // 3..=9 -> pieces: [3],[4..7],[8..9] = 3 pieces; 0..=7 -> 1 piece.
        assert_eq!(ranges.len(), 3);
        let cells: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(cells, 7 * 8);
    }

    #[test]
    fn cubic_range() {
        let r = DyadicRange::cube(2, &[1, 3]);
        assert!(r.is_cubic());
        assert_eq!(r.origin(), vec![4, 12]);
        assert_eq!(r.extents(), vec![4, 4]);
        assert_eq!(r.len(), 16);
    }
}
