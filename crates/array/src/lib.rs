//! Dense multidimensional arrays and index arithmetic for the `shiftsplit`
//! workspace.
//!
//! This crate provides the small, dependency-free substrate that every other
//! crate builds on:
//!
//! * [`Shape`] — a d-dimensional extent with row-major strides and
//!   linear/multi index conversion,
//! * [`NdArray`] — a dense row-major array of `f64` (generic over the element
//!   type) with sub-array extraction/insertion, used for in-memory chunks,
//! * [`DyadicInterval`] / [`DyadicRange`] — the dyadic geometry underlying
//!   Haar wavelets (Definition 3 of the paper), including the greedy
//!   decomposition of an arbitrary axis-aligned range into maximal dyadic
//!   ranges,
//! * [`morton`] — z-order (Morton) traversal of chunk grids, required by the
//!   non-standard out-of-core transform (Result 2 of the paper),
//! * [`MultiIndexIter`] — odometer-style iteration over rectangular index
//!   domains.
//!
//! Everything here is deliberately simple and allocation-conscious: shapes are
//! small `Vec<usize>`s, arrays are a single `Vec<T>`, and the hot loops
//! (sub-array copy, Morton decode) avoid per-element allocation.

// Axis-indexed loops over several parallel per-axis arrays are the clearest
// idiom for the index arithmetic in this workspace; iterator rewrites hurt
// readability without changing the generated code.
#![allow(clippy::needless_range_loop)]

pub mod array;
pub mod dyadic;
pub mod index;
pub mod morton;
pub mod shape;

pub use array::NdArray;
pub use dyadic::{decompose_interval, decompose_range, DyadicInterval, DyadicRange};
pub use index::MultiIndexIter;
pub use morton::{morton_decode, morton_encode, MortonIter};
pub use shape::Shape;

/// Returns `true` when `x` is a power of two (and non-zero).
#[inline]
pub fn is_pow2(x: usize) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// Base-2 logarithm of a power of two.
///
/// # Panics
///
/// Panics if `x` is not a power of two.
#[inline]
pub fn log2_exact(x: usize) -> u32 {
    assert!(is_pow2(x), "log2_exact: {x} is not a power of two");
    x.trailing_zeros()
}

/// Smallest power of two `>= x` (with `next_pow2(0) == 1`).
#[inline]
pub fn next_pow2(x: usize) -> usize {
    x.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_predicates() {
        assert!(is_pow2(1));
        assert!(is_pow2(2));
        assert!(is_pow2(1024));
        assert!(!is_pow2(0));
        assert!(!is_pow2(3));
        assert!(!is_pow2(1023));
    }

    #[test]
    fn log2_of_powers() {
        for b in 0..60 {
            assert_eq!(log2_exact(1usize << b), b);
        }
    }

    #[test]
    #[should_panic]
    fn log2_rejects_non_powers() {
        log2_exact(12);
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(next_pow2(1000), 1024);
    }
}
