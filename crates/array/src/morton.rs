//! Z-order (Morton) encoding and traversal.
//!
//! The non-standard out-of-core transform (Result 2 of the paper) reaches its
//! optimal `O(N^d/B^d)` I/O bound only when chunks are visited in z-order:
//! under that schedule the `2^d − 1` detail coefficients produced at each
//! internal quad-tree node are finalized exactly when the last of their four
//! (2^d) children has been consumed, so they can be held in a logarithmic-size
//! cache instead of being re-read from disk.

/// Interleaves the bits of `coords` (d coordinates, `bits` significant bits
/// each) into a single Morton code. Axis 0 contributes the most significant
/// bit of each group, matching row-major tie-breaking.
///
/// ```
/// use ss_array::morton_encode;
/// assert_eq!(morton_encode(&[0b10, 0b01], 2), 0b1001);
/// ```
pub fn morton_encode(coords: &[usize], bits: u32) -> usize {
    let d = coords.len();
    let mut code = 0usize;
    // A real assert, not debug_assert: in release builds an oversized
    // `bits * d` would silently wrap and alias distinct cells to the same
    // code, corrupting the z-order schedule (and with it the crest-cache
    // flush discipline of the non-standard transform).
    assert!(
        (bits as usize)
            .checked_mul(d)
            .is_some_and(|total| total <= usize::BITS as usize),
        "morton code of {d} coordinates x {bits} bits would overflow usize"
    );
    for b in (0..bits).rev() {
        for (axis, &c) in coords.iter().enumerate() {
            let bit = (c >> b) & 1;
            code = (code << 1) | bit;
            let _ = axis;
        }
    }
    code
}

/// Inverse of [`morton_encode`]: writes the `d` coordinates into `out`.
pub fn morton_decode(mut code: usize, bits: u32, out: &mut [usize]) {
    let d = out.len();
    out.iter_mut().for_each(|c| *c = 0);
    for b in 0..bits {
        for axis in (0..d).rev() {
            out[axis] |= (code & 1) << b;
            code >>= 1;
        }
    }
}

/// Iterates the cells of a `2^bits`-per-axis cubic grid in z-order.
///
/// ```
/// use ss_array::MortonIter;
/// let order: Vec<Vec<usize>> = MortonIter::new(2, 1).collect();
/// assert_eq!(order, vec![vec![0,0], vec![0,1], vec![1,0], vec![1,1]]);
/// ```
pub struct MortonIter {
    next_code: usize,
    total: usize,
    bits: u32,
    d: usize,
}

impl MortonIter {
    /// Z-order traversal of a `d`-dimensional grid with `2^bits` cells per
    /// axis.
    pub fn new(d: usize, bits: u32) -> Self {
        assert!(d >= 1);
        // `bits * d` must be checked before the shift: a wrapped multiply
        // would feed `checked_shl` a small, plausible-looking shift amount
        // and the guard below would never fire.
        let shift = (bits as usize)
            .checked_mul(d)
            .filter(|&s| s < usize::BITS as usize)
            .expect("morton grid too large") as u32;
        let total = 1usize.checked_shl(shift).expect("morton grid too large");
        MortonIter {
            next_code: 0,
            total,
            bits,
            d,
        }
    }
}

impl Iterator for MortonIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.next_code >= self.total {
            return None;
        }
        let mut out = vec![0usize; self.d];
        morton_decode(self.next_code, self.bits, &mut out);
        self.next_code += 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.total - self.next_code;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for MortonIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn encode_decode_roundtrip() {
        for d in 1..=4usize {
            for bits in 0..=3u32 {
                let side = 1usize << bits;
                let mut out = vec![0usize; d];
                for code in 0..side.pow(d as u32) {
                    morton_decode(code, bits, &mut out);
                    assert_eq!(morton_encode(&out, bits), code);
                }
            }
        }
    }

    #[test]
    fn iter_visits_every_cell_once() {
        let cells: Vec<Vec<usize>> = MortonIter::new(3, 2).collect();
        assert_eq!(cells.len(), 64);
        let set: HashSet<Vec<usize>> = cells.into_iter().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn z_order_2d_first_quadrant_first() {
        // In z-order the entire first quadrant precedes the others.
        let cells: Vec<Vec<usize>> = MortonIter::new(2, 2).collect();
        for (i, c) in cells.iter().enumerate() {
            if i < 4 {
                assert!(c[0] < 2 && c[1] < 2, "cell {c:?} at rank {i}");
            }
        }
    }

    #[test]
    fn sibling_groups_are_contiguous() {
        // Every aligned group of 2^d consecutive codes shares a parent cell.
        let d = 2;
        let cells: Vec<Vec<usize>> = MortonIter::new(d, 3).collect();
        for group in cells.chunks(1 << d) {
            let parent: Vec<usize> = group[0].iter().map(|&c| c >> 1).collect();
            for cell in group {
                let p: Vec<usize> = cell.iter().map(|&c| c >> 1).collect();
                assert_eq!(p, parent);
            }
        }
    }

    #[test]
    #[should_panic(expected = "overflow usize")]
    fn encode_rejects_code_width_overflow() {
        // 3 coordinates x 32 bits = 96 > 64 code bits: must panic (in every
        // build profile) instead of silently aliasing cells.
        let _ = morton_encode(&[1, 2, 3], 32);
    }

    #[test]
    #[should_panic(expected = "morton grid too large")]
    fn iter_rejects_code_width_overflow() {
        let _ = MortonIter::new(3, 32);
    }

    #[test]
    #[should_panic(expected = "morton grid too large")]
    fn iter_rejects_wrapped_bit_product() {
        // bits * d wraps u32 arithmetic (2^30 * 8 = 2^33); the guard must
        // catch the wrap itself, not just large in-range products.
        let _ = MortonIter::new(8, 1 << 30);
    }

    #[test]
    fn one_dimensional_is_sequential() {
        let cells: Vec<Vec<usize>> = MortonIter::new(1, 3).collect();
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c[0], i);
        }
    }
}
