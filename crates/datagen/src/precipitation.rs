//! PRECIPITATION-like 3-d rainfall cube and its monthly append feed.

use crate::SplitMix64;
use ss_array::{NdArray, Shape};

/// One month of daily precipitation on a `lat × lon` grid, shaped
/// `[nlat, nlon, ndays]` — the unit of appending in the paper's Section 6.2
/// experiment (`8 × 8 × 32` there).
///
/// Rain is non-negative and bursty: wet spells arrive as spatially coherent
/// fronts with exponential-ish intensity, dry days are exactly zero —
/// matching the character of daily Pacific-Northwest rainfall.
pub fn precipitation_month(
    nlat: usize,
    nlon: usize,
    ndays: usize,
    month: usize,
    seed: u64,
) -> NdArray<f64> {
    let mut rng = SplitMix64::new(seed ^ (month as u64).wrapping_mul(0xA076_1D64_78BD_642F));
    // Winter months are wetter in the PNW; month 0 = January.
    let season = month % 12;
    let wet_prob = match season {
        10 | 11 | 0 | 1 | 2 => 0.65, // Nov–Mar
        3 | 4 | 9 => 0.45,
        _ => 0.2,
    };
    // Pre-draw a per-day front: wet/dry, centre and extent.
    let mut fronts = Vec::with_capacity(ndays);
    for _ in 0..ndays {
        let wet = rng.next_f64() < wet_prob;
        let centre = (rng.range(0.0, nlat as f64), rng.range(0.0, nlon as f64));
        let radius = rng.range(2.0, (nlat + nlon) as f64 / 2.0);
        let intensity = -rng.next_f64().max(1e-12).ln() * 12.0; // exp(12mm)
        fronts.push((wet, centre, radius, intensity));
    }
    NdArray::from_fn(Shape::new(&[nlat, nlon, ndays]), |idx| {
        let (wet, (clat, clon), radius, intensity) = fronts[idx[2]];
        if !wet {
            return 0.0;
        }
        let dist = ((idx[0] as f64 - clat).powi(2) + (idx[1] as f64 - clon).powi(2)).sqrt();
        if dist > radius {
            return 0.0;
        }
        let falloff = 1.0 - dist / radius;
        let mut cell = SplitMix64::new(
            seed ^ ((month * 31 + idx[2]) as u64) << 20 ^ ((idx[0] * 64 + idx[1]) as u64),
        );
        (intensity * falloff * (0.6 + 0.8 * cell.next_f64())).max(0.0)
    })
}

/// A full multi-month precipitation cube `[nlat, nlon, months · days]`,
/// concatenating [`precipitation_month`] along the time axis. Used when an
/// experiment needs the whole history at once (e.g. validating appends
/// against a from-scratch transform).
pub fn precipitation_cube(
    nlat: usize,
    nlon: usize,
    days_per_month: usize,
    months: usize,
    seed: u64,
) -> NdArray<f64> {
    let mut out = NdArray::<f64>::zeros(Shape::new(&[nlat, nlon, days_per_month * months]));
    for m in 0..months {
        let chunk = precipitation_month(nlat, nlon, days_per_month, m, seed);
        out.insert(&[0, 0, m * days_per_month], &chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_negative_and_bursty() {
        let m = precipitation_month(8, 8, 32, 0, 11);
        let zeros = m.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!(m.as_slice().iter().all(|&v| v >= 0.0));
        assert!(zeros > 0, "some dry cells expected");
        assert!(zeros < m.len(), "some rain expected in January");
    }

    #[test]
    fn deterministic() {
        let a = precipitation_month(8, 8, 32, 5, 3);
        let b = precipitation_month(8, 8, 32, 5, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn months_differ() {
        let a = precipitation_month(8, 8, 32, 0, 3);
        let b = precipitation_month(8, 8, 32, 1, 3);
        assert!(a.max_abs_diff(&b) > 1e-9);
    }

    #[test]
    fn winter_wetter_than_summer() {
        let jan: f64 = (0..4)
            .map(|y| precipitation_month(8, 8, 32, y * 12, 7).total())
            .sum();
        let jul: f64 = (0..4)
            .map(|y| precipitation_month(8, 8, 32, y * 12 + 6, 7).total())
            .sum();
        assert!(jan > jul, "january {jan} vs july {jul}");
    }

    #[test]
    fn cube_concatenates_months() {
        let cube = precipitation_cube(4, 4, 8, 3, 9);
        assert_eq!(cube.shape().dims(), &[4, 4, 24]);
        let m1 = precipitation_month(4, 4, 8, 1, 9);
        let slice = cube.extract(&[0, 0, 8], &[4, 4, 8]);
        assert_eq!(slice, m1);
    }
}
