//! Synthetic datasets standing in for the paper's evaluation data.
//!
//! The paper evaluates on two real datasets we cannot redistribute:
//!
//! * **TEMPERATURE** — a 16 GB, 4-d cube (latitude × longitude × altitude ×
//!   time) of JPL global temperature measurements;
//! * **PRECIPITATION** — 45 years of daily Pacific-Northwest rainfall on an
//!   8 × 8 spatial grid.
//!
//! [`temperature_cube`] and [`precipitation_month`] generate fields with the
//! same dimensionality, shapes and qualitative structure (smooth seasonal
//! temperature; bursty non-negative rain). The I/O-cost experiments
//! (Figures 11–13) depend only on shape and density — identical for the
//! substitutes — while synopsis-accuracy experiments get a comparably
//! compressible signal. All generators are deterministic given a seed.

pub mod precipitation;
pub mod sparse;
pub mod streams;
pub mod temperature;

pub use precipitation::{precipitation_cube, precipitation_month};
pub use sparse::{sparse_cube, zipf_cube};
pub use streams::{sensor_stream, SensorStream};
pub use temperature::temperature_cube;

/// A tiny deterministic xorshift RNG used by every generator, so datasets
/// reproduce bit-exactly across runs without threading `rand` state through
/// public APIs.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator (any seed is fine, including 0).
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_uniform_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            let r = rng.range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&r));
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
