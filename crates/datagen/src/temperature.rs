//! TEMPERATURE-like 4-d climate cube.

use crate::SplitMix64;
use ss_array::{NdArray, Shape};

/// Generates a smooth 4-d temperature field over
/// `latitude × longitude × altitude × time`, qualitatively matching the
/// paper's JPL TEMPERATURE dataset: a latitudinal gradient, a longitudinal
/// continental pattern, an altitude lapse rate, seasonal and diurnal cycles,
/// and small measurement noise.
///
/// Any shape works; the canonical experiment shapes are cubes or
/// `[lat, lon, alt, time]` with power-of-two extents.
pub fn temperature_cube(dims: &[usize], seed: u64) -> NdArray<f64> {
    assert_eq!(dims.len(), 4, "temperature_cube is 4-dimensional");
    let mut rng = SplitMix64::new(seed);
    // A couple of random phases so different seeds give different planets.
    let phase_lon = rng.range(0.0, std::f64::consts::TAU);
    let phase_season = rng.range(0.0, std::f64::consts::TAU);
    let noise_amp = 0.4;
    let (nlat, nlon, nalt, ntime) = (dims[0], dims[1], dims[2], dims[3]);
    NdArray::from_fn(Shape::new(dims), |idx| {
        let lat = idx[0] as f64 / nlat.max(1) as f64; // 0 = south pole
        let lon = idx[1] as f64 / nlon.max(1) as f64;
        let alt = idx[2] as f64 / nalt.max(1) as f64;
        let t = idx[3] as f64 / ntime.max(1) as f64;
        // Mean surface temperature by latitude: warm equator, cold poles.
        let lat_term = 30.0 * (std::f64::consts::PI * lat).sin() - 10.0;
        // Continents vs oceans along longitude.
        let lon_term = 6.0 * (std::f64::consts::TAU * 2.0 * lon + phase_lon).cos();
        // Lapse rate: ~6.5 K per km, altitude axis spans ~10 km.
        let alt_term = -65.0 * alt;
        // Seasonal cycle (one year across the time axis) + diurnal ripple.
        let season =
            8.0 * (std::f64::consts::TAU * t + phase_season).sin() * (2.0 * lat - 1.0).signum();
        let diurnal = 1.5 * (std::f64::consts::TAU * 365.0 * t).sin();
        let mut local = SplitMix64::new(
            seed ^ (idx[0] as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(idx[1] as u64)
                .wrapping_mul(0xBF58476D1CE4E5B9)
                .wrapping_add((idx[2] as u64) << 32)
                .wrapping_add(idx[3] as u64),
        );
        lat_term + lon_term + alt_term + season + diurnal + noise_amp * (local.next_f64() - 0.5)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = temperature_cube(&[4, 4, 2, 8], 9);
        let b = temperature_cube(&[4, 4, 2, 8], 9);
        assert_eq!(a, b);
        let c = temperature_cube(&[4, 4, 2, 8], 10);
        assert!(a.max_abs_diff(&c) > 1e-9);
    }

    #[test]
    fn values_are_plausible_temperatures() {
        let a = temperature_cube(&[8, 8, 4, 16], 1);
        for &v in a.as_slice() {
            assert!((-120.0..=60.0).contains(&v), "implausible temperature {v}");
        }
    }

    #[test]
    fn altitude_cools() {
        let a = temperature_cube(&[8, 8, 8, 4], 3);
        // Column means should decrease with altitude.
        let mean_at = |alt: usize| {
            let mut s = 0.0;
            let mut c = 0;
            for lat in 0..8 {
                for lon in 0..8 {
                    for t in 0..4 {
                        s += a.get(&[lat, lon, alt, t]);
                        c += 1;
                    }
                }
            }
            s / c as f64
        };
        assert!(mean_at(0) > mean_at(7));
    }

    #[test]
    fn field_is_compressible() {
        // A smooth field must concentrate energy in few wavelet terms:
        // top 5% of orthonormal coefficients should hold >90% of energy.
        let a = temperature_cube(&[8, 8, 4, 8], 5);
        let t = ss_core::standard::forward_to(&a);
        let shape = a.shape().clone();
        let mut mags: Vec<f64> = ss_array::MultiIndexIter::new(shape.dims())
            .map(|idx| {
                let s = ss_core::standard::orthonormal_scale(&shape, &idx);
                (t.get(&idx) * s).powi(2)
            })
            .collect();
        let total: f64 = mags.iter().sum();
        mags.sort_by(|x, y| y.partial_cmp(x).unwrap());
        let top: f64 = mags.iter().take(mags.len() / 20).sum();
        assert!(top / total > 0.9, "energy ratio {}", top / total);
    }
}
