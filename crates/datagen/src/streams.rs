//! Streaming data sources for the Section 5.3 / 6.3 experiments.

use crate::SplitMix64;

/// An endless deterministic sensor stream in the time-series model: a slow
/// random walk plus a daily cycle and occasional spikes — the kind of signal
/// whose best-K wavelet synopsis is worth maintaining.
#[derive(Clone, Debug)]
pub struct SensorStream {
    rng: SplitMix64,
    t: u64,
    level: f64,
}

impl SensorStream {
    /// Seeded stream starting at time 0.
    pub fn new(seed: u64) -> Self {
        SensorStream {
            rng: SplitMix64::new(seed),
            t: 0,
            level: 20.0,
        }
    }

    /// Items emitted so far.
    pub fn position(&self) -> u64 {
        self.t
    }
}

impl Iterator for SensorStream {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        // Random-walk drift.
        self.level += self.rng.range(-0.05, 0.05);
        let cycle = 4.0 * (self.t as f64 * std::f64::consts::TAU / 96.0).sin();
        let spike = if self.rng.next_f64() < 0.01 {
            self.rng.range(5.0, 25.0)
        } else {
            0.0
        };
        self.t += 1;
        Some(self.level + cycle + spike)
    }
}

/// Collects the first `len` items of a seeded [`SensorStream`].
pub fn sensor_stream(len: usize, seed: u64) -> Vec<f64> {
    SensorStream::new(seed).take(len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(sensor_stream(256, 4), sensor_stream(256, 4));
        assert_ne!(sensor_stream(256, 4), sensor_stream(256, 5));
    }

    #[test]
    fn stream_is_endless_and_tracks_position() {
        let mut s = SensorStream::new(1);
        for _ in 0..1000 {
            s.next().unwrap();
        }
        assert_eq!(s.position(), 1000);
    }

    #[test]
    fn values_near_operating_level() {
        let v = sensor_stream(4096, 2);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!((0.0..60.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn has_spikes() {
        let v = sensor_stream(4096, 3);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(v.iter().any(|&x| x > mean + 5.0), "expected spikes");
    }
}
