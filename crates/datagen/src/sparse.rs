//! Sparse and skewed cubes for the sparse-data variants of the transform
//! experiments (Section 5.1 discusses `z` non-zero values).

use crate::SplitMix64;
use ss_array::{NdArray, Shape};

/// A `dims` cube with exactly `nonzeros` uniformly placed non-zero cells
/// (values uniform in `[1, 100)`).
///
/// # Panics
///
/// Panics when `nonzeros` exceeds the cube size.
pub fn sparse_cube(dims: &[usize], nonzeros: usize, seed: u64) -> NdArray<f64> {
    let shape = Shape::new(dims);
    assert!(nonzeros <= shape.len(), "more non-zeros than cells");
    let mut out = NdArray::<f64>::zeros(shape.clone());
    let mut rng = SplitMix64::new(seed);
    let mut placed = 0usize;
    let data = out.as_mut_slice();
    while placed < nonzeros {
        let off = rng.below(data.len());
        if data[off] == 0.0 {
            data[off] = rng.range(1.0, 100.0);
            placed += 1;
        }
    }
    out
}

/// A cube whose cell magnitudes follow a Zipf-like distribution over a set
/// of random "hot spots": a few huge values, a long tail of small ones —
/// the OLAP-measure skew that makes wavelet synopses attractive.
pub fn zipf_cube(dims: &[usize], skew: f64, seed: u64) -> NdArray<f64> {
    assert!(skew > 0.0);
    let shape = Shape::new(dims);
    let mut rng = SplitMix64::new(seed);
    let mut out = NdArray::<f64>::zeros(shape.clone());
    let len = out.len();
    let data = out.as_mut_slice();
    for (rank, v) in data.iter_mut().enumerate() {
        // Zipf by cell rank after a pseudo-random shuffle via hashing.
        let shuffled = SplitMix64::new(seed ^ rank as u64).next_u64() as usize % len;
        *v = 1000.0 / ((shuffled + 1) as f64).powf(skew) * (0.5 + rng.next_f64());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_cube_has_exact_density() {
        let a = sparse_cube(&[16, 16], 37, 5);
        let nz = a.as_slice().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nz, 37);
    }

    #[test]
    fn sparse_cube_deterministic() {
        assert_eq!(sparse_cube(&[8, 8], 10, 3), sparse_cube(&[8, 8], 10, 3));
    }

    #[test]
    #[should_panic]
    fn sparse_cube_rejects_overfull() {
        sparse_cube(&[2, 2], 5, 0);
    }

    #[test]
    fn zipf_cube_is_skewed() {
        let a = zipf_cube(&[32, 32], 1.1, 7);
        let mut v: Vec<f64> = a.as_slice().to_vec();
        v.sort_by(|x, y| y.partial_cmp(x).unwrap());
        let total: f64 = v.iter().sum();
        let top: f64 = v.iter().take(v.len() / 10).sum();
        assert!(top / total > 0.5, "top decile holds {}", top / total);
    }
}
