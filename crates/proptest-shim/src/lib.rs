//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be vendored. This shim keeps the workspace's property tests
//! compiling and running unchanged by implementing the small surface they
//! use: the [`proptest!`] macro, range/`any`/`collection::vec` strategies
//! and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * sampling is **deterministic** — each test case draws from a SplitMix64
//!   stream seeded by the test's module path and case number, so failures
//!   reproduce exactly across runs and machines;
//! * there is **no shrinking** — a failing case panics with its values
//!   printed by the assertion message instead of being minimised.

use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 stream; the sole entropy source for sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from a test identifier (FNV-1a hashed) and the case ordinal.
    pub fn new(test_name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of sampled values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Types with a full-domain uniform sampler, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning a wide but non-pathological range.
        (rng.next_f64() - 0.5) * 2e12
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for fixed-length vectors of `elem` samples.
    pub struct VecStrategy<S> {
        elem: S,
        len: usize,
    }

    /// A vector of exactly `len` values drawn from `elem`.
    ///
    /// Real proptest accepts a size *range* here; the workspace only ever
    /// passes a fixed length, which is all this shim supports.
    pub fn vec<S: Strategy>(elem: S, len: usize) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs `config.cases` deterministic cases (default 256). Unlike
/// real proptest there is no shrinking; the first failing case panics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::TestRng::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                { $body }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name (no shrinking, so a plain
/// panic carries the failing values).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic_per_test_and_case() {
        let mut a = TestRng::new("x::y", 3);
        let mut b = TestRng::new("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::new("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::new("bounds", 0);
        for _ in 0..1000 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..5.0).sample(&mut rng);
            assert!((-2.0..5.0).contains(&f));
            let i = (-10i64..-2).sample(&mut rng);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_has_fixed_len_and_bounds() {
        let mut rng = TestRng::new("vecs", 0);
        let v = collection::vec(-1.0f64..1.0, 37).sample(&mut rng);
        assert_eq!(v.len(), 37);
        assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_each_arg(a in 0usize..10, b in any::<u64>(), v in prop::collection::vec(0.0f64..1.0, 4)) {
            prop_assert!(a < 10);
            prop_assert_eq!(v.len(), 4);
            let _ = b;
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_uses_default(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }
}
