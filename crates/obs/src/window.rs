//! Sliding-interval histogram windows for "recent p50/p99" readouts.
//!
//! Lifetime histograms answer "how has this process behaved since
//! start"; a long-running server also needs "how is it behaving *now*".
//! A [`HistogramWindow`] keeps, per histogram name, a short queue of
//! baseline snapshots taken every [`tick`](HistogramWindow::tick); the
//! **recent** view of a histogram is [`delta_since`] the oldest retained
//! baseline — i.e. the samples of roughly the last `depth × tick
//! interval` of wall clock. The exporters in [`crate::registry`] attach
//! the recent view next to the lifetime numbers.
//!
//! [`delta_since`]: crate::HistogramSnapshot::delta_since

use crate::histogram::HistogramSnapshot;
use crate::registry::Registry;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

/// Rolling baselines over every histogram of one registry.
pub struct HistogramWindow {
    registry: Registry,
    tick_every: Duration,
    depth: usize,
    baselines: Mutex<BTreeMap<String, VecDeque<HistogramSnapshot>>>,
}

impl HistogramWindow {
    /// A window over `registry` spanning `depth` ticks of `tick_every`
    /// each (`depth` is clamped to at least 1). The caller drives
    /// [`tick`](HistogramWindow::tick) — typically a background thread,
    /// see [`MetricsServer::bind_windowed`](crate::MetricsServer::bind_windowed).
    pub fn new(registry: Registry, tick_every: Duration, depth: usize) -> HistogramWindow {
        HistogramWindow {
            registry,
            tick_every,
            depth: depth.max(1),
            baselines: Mutex::new(BTreeMap::new()),
        }
    }

    /// The cadence [`tick`](HistogramWindow::tick) is meant to run at.
    pub fn tick_every(&self) -> Duration {
        self.tick_every
    }

    /// The window span (`depth × tick_every`) in seconds.
    pub fn span_secs(&self) -> f64 {
        self.tick_every.as_secs_f64() * self.depth as f64
    }

    /// Takes a baseline of every histogram currently registered and
    /// drops baselines older than the window depth.
    pub fn tick(&self) {
        let snaps = self.registry.histogram_snapshots();
        let mut baselines = self.baselines.lock().unwrap();
        for (name, snap) in snaps {
            let q = baselines.entry(name).or_default();
            q.push_back(snap);
            while q.len() > self.depth {
                q.pop_front();
            }
        }
    }

    /// The recent view of histogram `name`: current state minus the
    /// oldest retained baseline. `None` until the first tick has seen
    /// the histogram (no baseline — "recent" would equal lifetime and
    /// mislead).
    pub fn recent(&self, name: &str) -> Option<HistogramSnapshot> {
        let current = self.registry.histogram(name).snapshot();
        self.recent_from(name, &current)
    }

    /// Like [`recent`](HistogramWindow::recent) with the current
    /// snapshot supplied by the caller. Touches only the window's own
    /// lock — safe to call while holding the registry lock (the
    /// exporters do).
    pub fn recent_from(
        &self,
        name: &str,
        current: &HistogramSnapshot,
    ) -> Option<HistogramSnapshot> {
        let baselines = self.baselines.lock().unwrap();
        let oldest = baselines.get(name)?.front()?;
        Some(current.delta_since(oldest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recent_reflects_only_samples_inside_the_window() {
        let r = Registry::new();
        let h = r.histogram("w.ns");
        for _ in 0..100 {
            h.record(1_000_000);
        }
        let w = HistogramWindow::new(r.clone(), Duration::from_millis(10), 2);
        assert!(w.recent("w.ns").is_none(), "no baseline before first tick");
        w.tick();
        for _ in 0..10 {
            h.record(100);
        }
        let recent = w.recent("w.ns").unwrap();
        assert_eq!(recent.count, 10, "pre-window samples excluded");
        assert!(recent.p99() <= 127, "recent p99 {}", recent.p99());
        let lifetime = h.snapshot();
        assert_eq!(lifetime.count, 110);
        assert!(lifetime.p50() >= 1_000_000 / 2);
    }

    #[test]
    fn window_depth_bounds_the_lookback() {
        let r = Registry::new();
        let h = r.histogram("w.ns");
        let w = HistogramWindow::new(r.clone(), Duration::from_millis(10), 2);
        h.record(1); // tick 0 baseline includes this
        w.tick();
        h.record(2);
        w.tick();
        h.record(3);
        w.tick();
        // Depth 2: oldest retained baseline is tick 1's (count 2), so
        // recent sees the last two samples only.
        let recent = w.recent("w.ns").unwrap();
        assert_eq!(recent.count, 1, "only the post-oldest-baseline sample");
        w.tick();
        assert_eq!(w.recent("w.ns").unwrap().count, 0, "traffic stopped");
    }

    #[test]
    fn histograms_registered_after_construction_are_picked_up() {
        let r = Registry::new();
        let w = HistogramWindow::new(r.clone(), Duration::from_millis(10), 4);
        w.tick();
        r.record_ns("late.ns", 42);
        assert!(w.recent("late.ns").is_none());
        w.tick();
        r.record_ns("late.ns", 43);
        assert_eq!(w.recent("late.ns").unwrap().count, 1);
    }
}
