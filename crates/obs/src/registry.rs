//! The metric registry and its exporters.

use crate::histogram::{bucket_upper, Histogram, HistogramSnapshot, NUM_BUCKETS};
use crate::json::Value;
use crate::span::Span;
use crate::window::HistogramWindow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Version tag of the JSON snapshot schema (see [`Registry::to_json`]).
pub const SCHEMA: &str = "ss-metrics-v1";

/// A monotonically increasing named count.
#[derive(Clone, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the count (used when folding an external snapshot,
    /// e.g. [`IoSnapshot`](../../ss_storage/struct.IoSnapshot.html), into
    /// the registry).
    #[inline]
    pub fn store(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A named value that can go up and down.
#[derive(Clone, Default)]
pub struct Gauge {
    v: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, n: u64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Default)]
struct Inner {
    // BTreeMap keeps export order stable and diffs deterministic.
    metrics: RwLock<BTreeMap<String, Metric>>,
}

/// A set of named metrics, cheaply clonable (clones share state).
///
/// Handle lookup ([`counter`](Registry::counter) etc.) takes a short
/// registry lock; the returned handles record lock-free, so hot paths
/// should resolve their handles once and keep them. Metric names are
/// dotted paths (`transform.read_ns`) — the dots express the phase
/// hierarchy and are mangled to `_` in Prometheus exposition.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

/// The process-wide registry used by [`crate::timed`] and the default
/// instrumentation throughout the workspace.
pub fn global() -> Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new).clone()
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.inner.metrics.read().unwrap().get(name) {
            return m.clone();
        }
        let mut metrics = self.inner.metrics.write().unwrap();
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Records `ns` into histogram `name`.
    pub fn record_ns(&self, name: &str, ns: u64) {
        self.histogram(name).record(ns);
    }

    /// Times `f`, recording the elapsed nanoseconds into histogram `name`.
    pub fn timed<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.record_ns(name, start.elapsed().as_nanos() as u64);
        r
    }

    /// Starts a guard that records its lifetime into histogram `name`
    /// when dropped — the explicit form of [`timed`](Registry::timed) for
    /// spans that cross scope boundaries.
    pub fn span(&self, name: &str) -> Span {
        Span::new(self.histogram(name))
    }

    /// Removes every metric (tests).
    pub fn clear(&self) {
        self.inner.metrics.write().unwrap().clear();
    }

    /// Snapshots every registered histogram (name-sorted), the feed for
    /// [`HistogramWindow::tick`].
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        let metrics = self.inner.metrics.read().unwrap();
        metrics
            .iter()
            .filter_map(|(name, m)| match m {
                Metric::Histogram(h) => Some((name.clone(), h.snapshot())),
                _ => None,
            })
            .collect()
    }

    /// The JSON snapshot as a [`Value`] tree (`ss-metrics-v1` schema):
    ///
    /// ```json
    /// {
    ///   "schema": "ss-metrics-v1",
    ///   "counters":   {"io.block_reads": 7, ...},
    ///   "gauges":     {"transform.workers": 4, ...},
    ///   "histograms": {
    ///     "storage.block_read_ns": {
    ///       "count": 9, "sum": 1234, "max": 400,
    ///       "p50": 127, "p90": 255, "p99": 400,
    ///       "buckets": [[63, 2], [127, 4], [511, 3]]
    ///     }
    ///   }
    /// }
    /// ```
    ///
    /// `buckets` lists only non-empty buckets as
    /// `[inclusive upper bound, count]` pairs in ascending order.
    pub fn to_json_value(&self) -> Value {
        self.to_json_value_windowed(None)
    }

    /// Like [`to_json_value`](Registry::to_json_value), with the
    /// sliding-interval view attached: when `window` is given (and has
    /// ticked at least once over a histogram), that histogram's object
    /// gains a `"recent"` sub-object — `count`, `sum`, `max`, `p50`,
    /// `p90`, `p99` over roughly the last [`span_secs`] of traffic — and
    /// the document gains a top-level `"recent_window_s"`. Old consumers
    /// ignore the extra fields; the schema tag is unchanged.
    ///
    /// [`span_secs`]: HistogramWindow::span_secs
    pub fn to_json_value_windowed(&self, window: Option<&HistogramWindow>) -> Value {
        let metrics = self.inner.metrics.read().unwrap();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => counters.push((name.clone(), Value::from(c.get()))),
                Metric::Gauge(g) => gauges.push((name.clone(), Value::from(g.get()))),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let buckets: Vec<Value> = (0..NUM_BUCKETS)
                        .filter(|&i| s.buckets[i] > 0)
                        .map(|i| {
                            Value::Array(vec![
                                Value::from(bucket_upper(i)),
                                Value::from(s.buckets[i]),
                            ])
                        })
                        .collect();
                    let mut pairs = vec![
                        ("count".into(), Value::from(s.count)),
                        ("sum".into(), Value::from(s.sum)),
                        ("max".into(), Value::from(s.max)),
                        ("p50".into(), Value::from(s.p50())),
                        ("p90".into(), Value::from(s.p90())),
                        ("p99".into(), Value::from(s.p99())),
                        ("buckets".into(), Value::Array(buckets)),
                    ];
                    if let Some(recent) = window.and_then(|w| w.recent_from(name, &s)) {
                        pairs.push((
                            "recent".into(),
                            Value::Object(vec![
                                ("count".into(), Value::from(recent.count)),
                                ("sum".into(), Value::from(recent.sum)),
                                ("max".into(), Value::from(recent.max)),
                                ("p50".into(), Value::from(recent.p50())),
                                ("p90".into(), Value::from(recent.p90())),
                                ("p99".into(), Value::from(recent.p99())),
                            ]),
                        ));
                    }
                    histograms.push((name.clone(), Value::Object(pairs)));
                }
            }
        }
        let mut doc = vec![
            ("schema".into(), Value::from(SCHEMA)),
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(histograms)),
        ];
        if let Some(w) = window {
            doc.push(("recent_window_s".into(), Value::Float(w.span_secs())));
        }
        Value::Object(doc)
    }

    /// The JSON snapshot as text (see [`to_json_value`](Registry::to_json_value)).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Prometheus text exposition (format version 0.0.4): counters and
    /// gauges as single samples, histograms as cumulative `_bucket{le=…}`
    /// series plus `_sum` and `_count`. Dotted names mangle to
    /// `ss_`-prefixed underscore names (`io.block_reads` →
    /// `ss_io_block_reads`).
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_windowed(None)
    }

    /// Like [`to_prometheus`](Registry::to_prometheus), additionally
    /// exposing each windowed histogram's recent view as gauges
    /// (`{name}_recent_p50` / `_p90` / `_p99` / `_max` / `_count`) so a
    /// scraper sees sliding-interval percentiles without doing rate math
    /// over buckets.
    pub fn to_prometheus_windowed(&self, window: Option<&HistogramWindow>) -> String {
        let metrics = self.inner.metrics.read().unwrap();
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            let pname = prometheus_name(name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {pname} counter\n{pname} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {pname} gauge\n{pname} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!("# TYPE {pname} histogram\n"));
                    let mut cumulative = 0u64;
                    for i in 0..NUM_BUCKETS {
                        if s.buckets[i] == 0 {
                            continue;
                        }
                        cumulative += s.buckets[i];
                        out.push_str(&format!(
                            "{pname}_bucket{{le=\"{}\"}} {cumulative}\n",
                            bucket_upper(i)
                        ));
                    }
                    out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {}\n", s.count));
                    out.push_str(&format!("{pname}_sum {}\n", s.sum));
                    out.push_str(&format!("{pname}_count {}\n", s.count));
                    if let Some(recent) = window.and_then(|w| w.recent_from(name, &s)) {
                        for (suffix, v) in [
                            ("recent_p50", recent.p50()),
                            ("recent_p90", recent.p90()),
                            ("recent_p99", recent.p99()),
                            ("recent_max", recent.max),
                            ("recent_count", recent.count),
                        ] {
                            out.push_str(&format!(
                                "# TYPE {pname}_{suffix} gauge\n{pname}_{suffix} {v}\n"
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

/// Mangles a dotted metric name into a Prometheus metric name.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("ss_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn handles_share_state_across_clones() {
        let r = Registry::new();
        let c = r.counter("a.count");
        c.inc();
        r.clone().counter("a.count").add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("a.gauge");
        g.set(17);
        g.add(3);
        assert_eq!(r.gauge("a.gauge").get(), 20);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn timed_and_span_record() {
        let r = Registry::new();
        let answer = r.timed("t.ns", || 7);
        assert_eq!(answer, 7);
        {
            let _span = r.span("t.ns");
        }
        assert_eq!(r.histogram("t.ns").count(), 2);
    }

    #[test]
    fn json_snapshot_has_stable_shape() {
        let r = Registry::new();
        r.counter("io.block_reads").add(7);
        r.gauge("transform.workers").set(4);
        r.record_ns("q.ns", 100);
        r.record_ns("q.ns", 3000);
        let v = json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("io.block_reads")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        assert_eq!(
            v.get("gauges")
                .unwrap()
                .get("transform.workers")
                .unwrap()
                .as_u64(),
            Some(4)
        );
        let h = v.get("histograms").unwrap().get("q.ns").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(3100));
        assert_eq!(h.get("max").unwrap().as_u64(), Some(3000));
        assert_eq!(h.get("buckets").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn json_histogram_counts_roundtrip_exactly() {
        let r = Registry::new();
        let h = r.histogram("h.ns");
        for v in [0u64, 1, 1, 255, 255, 255, u64::MAX] {
            h.record(v);
        }
        let parsed = json::parse(&r.to_json()).unwrap();
        let hv = parsed.get("histograms").unwrap().get("h.ns").unwrap();
        let total: u64 = hv
            .get("buckets")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|pair| pair.as_array().unwrap()[1].as_u64().unwrap())
            .sum();
        assert_eq!(total, 7);
        assert_eq!(hv.get("count").unwrap().as_u64(), Some(7));
        assert_eq!(hv.get("max").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn prometheus_exposition_is_wellformed() {
        let r = Registry::new();
        r.counter("io.block_reads").add(3);
        r.gauge("pool.frames").set(9);
        r.record_ns("storage.block_read_ns", 100);
        r.record_ns("storage.block_read_ns", 200_000);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE ss_io_block_reads counter"));
        assert!(text.contains("ss_io_block_reads 3"));
        assert!(text.contains("# TYPE ss_pool_frames gauge"));
        assert!(text.contains("# TYPE ss_storage_block_read_ns histogram"));
        assert!(text.contains("ss_storage_block_read_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("ss_storage_block_read_ns_count 2"));
        // Cumulative buckets are non-decreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=\"")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "{line}");
            last = n;
        }
    }

    #[test]
    fn prometheus_name_escaping_covers_non_alphanumerics() {
        assert_eq!(prometheus_name("io.block_reads"), "ss_io_block_reads");
        assert_eq!(prometheus_name("a-b c/d.e"), "ss_a_b_c_d_e");
        assert_eq!(prometheus_name("ünïcode.ns"), "ss__n_code_ns");
        assert_eq!(prometheus_name("9leading.digit"), "ss_9leading_digit");
        assert_eq!(prometheus_name(""), "ss_");
        // Escaped names stay within the Prometheus grammar
        // [a-zA-Z_:][a-zA-Z0-9_:]*.
        for raw in ["x{y=\"z\"}", "new\nline", "emoji🙂name"] {
            let p = prometheus_name(raw);
            assert!(p.chars().next().unwrap().is_ascii_alphabetic() || p.starts_with("ss_"));
            assert!(
                p.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{p}"
            );
        }
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        let r = Registry::new();
        assert_eq!(r.to_prometheus(), "");
        let v = json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(SCHEMA));
        for section in ["counters", "gauges", "histograms"] {
            assert!(
                v.get(section).unwrap().as_object().unwrap().is_empty(),
                "{section} not empty"
            );
        }
    }

    #[test]
    fn windowed_exports_attach_recent_views() {
        use crate::window::HistogramWindow;
        use std::time::Duration;
        let r = Registry::new();
        let h = r.histogram("srv.request_ns");
        for _ in 0..50 {
            h.record(1 << 20);
        }
        let w = HistogramWindow::new(r.clone(), Duration::from_millis(10), 3);

        // Before the first tick: no recent view, schema unchanged.
        let v = json::parse(&r.to_json_value_windowed(Some(&w)).to_string()).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(SCHEMA));
        let hv = v.get("histograms").unwrap().get("srv.request_ns").unwrap();
        assert!(hv.get("recent").is_none());

        w.tick();
        for _ in 0..5 {
            h.record(64);
        }
        let v = json::parse(&r.to_json_value_windowed(Some(&w)).to_string()).unwrap();
        let hv = v.get("histograms").unwrap().get("srv.request_ns").unwrap();
        let recent = hv.get("recent").unwrap();
        assert_eq!(recent.get("count").unwrap().as_u64(), Some(5));
        assert!(recent.get("p99").unwrap().as_u64().unwrap() <= 127);
        // Lifetime p99 still reflects the old heavy samples.
        assert!(hv.get("p99").unwrap().as_u64().unwrap() >= 1 << 19);
        assert!(v.get("recent_window_s").unwrap().as_f64().is_some());

        let text = r.to_prometheus_windowed(Some(&w));
        assert!(text.contains("ss_srv_request_ns_recent_p99"), "{text}");
        assert!(text.contains("ss_srv_request_ns_recent_count 5"), "{text}");
    }

    mod roundtrip_property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            // Record a pseudo-random sample set; to_json must round-trip
            // the exact per-bucket counts through parse().
            #[test]
            fn json_roundtrips_bucket_counts(
                values in prop::collection::vec(any::<u64>(), 100),
            ) {
                let r = Registry::new();
                let h = r.histogram("p.ns");
                for &v in &values {
                    h.record(v);
                }
                let snap = h.snapshot();
                let parsed = json::parse(&r.to_json()).unwrap();
                let hv = parsed.get("histograms").unwrap().get("p.ns").unwrap();
                prop_assert_eq!(
                    hv.get("count").unwrap().as_u64(),
                    Some(values.len() as u64)
                );
                let mut buckets = [0u64; NUM_BUCKETS];
                for pair in hv.get("buckets").unwrap().as_array().unwrap() {
                    let pair = pair.as_array().unwrap();
                    let upper = pair[0].as_u64().unwrap();
                    let count = pair[1].as_u64().unwrap();
                    let idx = (0..NUM_BUCKETS)
                        .find(|&i| bucket_upper(i) == upper)
                        .expect("bucket bound");
                    buckets[idx] = count;
                }
                prop_assert_eq!(buckets, snap.buckets);
            }
        }
    }
}
