//! Lock-free log2-bucketed latency histograms.
//!
//! A histogram has 65 buckets: bucket 0 holds the value `0`, bucket `i`
//! (`1 ..= 64`) holds values in `[2^(i-1), 2^i)` — so any `u64`
//! nanosecond reading lands in exactly one bucket with two instructions
//! of arithmetic and one relaxed `fetch_add`. Percentile readout walks
//! the bucket counts and reports the containing bucket's inclusive upper
//! bound, capped at the exact observed maximum, which makes
//! `p50 ≤ p90 ≤ p99 ≤ max` hold by construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one for zero plus one per power of two.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index of `value`: 0 for 0, else `64 − leading_zeros`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `idx`.
#[inline]
pub fn bucket_upper(idx: usize) -> u64 {
    match idx {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

struct Inner {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Cheaply clonable handle to a shared, lock-free histogram.
///
/// `sum` accumulates with wrapping arithmetic; at nanosecond scale it
/// overflows only after ~584 years of recorded time (or deliberate
/// `u64::MAX` samples), so snapshots treat it as exact.
#[derive(Clone, Default)]
pub struct Histogram {
    inner: Arc<Inner>,
}

/// A point-in-time copy of a histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_upper`] for the bounds).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (wrapping).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample. Lock-free: three relaxed atomic RMWs.
    #[inline]
    pub fn record(&self, value: u64) {
        self.inner.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// The samples recorded since `earlier` was taken (see
    /// [`HistogramSnapshot::delta_since`]).
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        self.snapshot().delta_since(earlier)
    }

    /// Copies the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.inner.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.inner.count.load(Ordering::Relaxed),
            sum: self.inner.sum.load(Ordering::Relaxed),
            max: self.inner.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram(count={}, p50={}, p99={}, max={})",
            s.count,
            s.quantile(0.50),
            s.quantile(0.99),
            s.max
        )
    }
}

impl HistogramSnapshot {
    /// The value at quantile `q` (`0.0 ..= 1.0`): the inclusive upper
    /// bound of the bucket containing the rank-`⌈q·count⌉` sample,
    /// capped at the observed maximum. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](HistogramSnapshot::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The interval histogram: samples recorded between `earlier` and
    /// `self` (both snapshots of the **same** histogram, `earlier` taken
    /// first). Bucket counts and `count` subtract exactly; `sum`
    /// subtracts wrapping (it accumulates wrapping). The histogram does
    /// not retain per-interval maxima, so `max` is reconstructed as the
    /// tightest bound both sides imply: the upper bound of the highest
    /// non-empty delta bucket, capped at the lifetime max. That keeps
    /// `p50 ≤ p90 ≤ p99 ≤ max` monotone on the delta by construction.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        let mut top = None;
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
            if *b > 0 {
                top = Some(i);
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            max: top.map_or(0, |i| bucket_upper(i).min(self.max)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_one_and_max_land_in_the_right_buckets() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1, "0 lands in bucket 0");
        assert_eq!(s.buckets[1], 1, "1 lands in bucket 1");
        assert_eq!(s.buckets[64], 1, "u64::MAX lands in bucket 64");
        assert_eq!(s.count, 3);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        // Every bucket's upper bound maps back into the bucket, and the
        // next value up maps into the next bucket.
        for idx in 0..NUM_BUCKETS {
            let hi = bucket_upper(idx);
            assert_eq!(bucket_of(hi), idx, "upper bound of {idx}");
            if hi < u64::MAX {
                assert_eq!(bucket_of(hi + 1), idx + 1, "successor of {idx}");
            }
        }
    }

    #[test]
    fn percentiles_are_monotone() {
        let h = Histogram::new();
        for v in [0u64, 1, 3, 17, 900, 4096, 100_000, u64::MAX] {
            for _ in 0..10 {
                h.record(v);
            }
        }
        let s = h.snapshot();
        let (p50, p90, p99) = (s.p50(), s.p90(), s.p99());
        assert!(p50 <= p90, "{p50} > {p90}");
        assert!(p90 <= p99, "{p90} > {p99}");
        assert!(p99 <= s.max, "{p99} > {}", s.max);
    }

    #[test]
    fn quantiles_bound_the_true_order_statistic() {
        // For single-bucket data, the quantile is exact (capped at max).
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(5);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 5);
        assert_eq!(s.p99(), 5);
        assert_eq!(s.mean(), 5.0);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn delta_since_isolates_the_interval() {
        let h = Histogram::new();
        for v in [1_000u64, 2_000, 4_000] {
            h.record(v);
        }
        let baseline = h.snapshot();
        h.record(16);
        h.record(32);
        let delta = h.delta_since(&baseline);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 48);
        assert_eq!(delta.buckets.iter().sum::<u64>(), 2);
        // Only the interval's buckets survive; the delta max bounds them.
        assert_eq!(delta.buckets[bucket_of(16)], 1);
        assert_eq!(delta.buckets[bucket_of(32)], 1);
        assert!(delta.max >= 32 && delta.max < 64, "max {}", delta.max);
        assert!(delta.p99() <= delta.max);
    }

    #[test]
    fn delta_since_empty_interval_reads_zero() {
        let h = Histogram::new();
        h.record(77);
        let baseline = h.snapshot();
        let delta = h.delta_since(&baseline);
        assert_eq!(delta.count, 0);
        assert_eq!(delta.max, 0);
        assert_eq!(delta.p50(), 0);
        assert_eq!(delta.p99(), 0);
    }

    #[test]
    fn delta_since_percentiles_stay_monotone() {
        // Mixed magnitudes before and after the baseline: the interval
        // view must keep quantile ordering on its own.
        let h = Histogram::new();
        for v in [u64::MAX, 5, 0] {
            h.record(v);
        }
        let baseline = h.snapshot();
        for v in [3u64, 900, 17, 100_000, 3, 3, 900] {
            h.record(v);
        }
        let d = h.delta_since(&baseline);
        assert_eq!(d.count, 7);
        let (p50, p90, p99) = (d.p50(), d.p90(), d.p99());
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= d.max,
            "{p50} {p90} {p99} {}",
            d.max
        );
        // The lifetime max (u64::MAX) must not leak into the interval.
        assert!(d.max < 1 << 17, "interval max {}", d.max);
    }

    #[test]
    fn concurrent_records_lose_no_samples() {
        let h = Histogram::new();
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * 1_000 + (i % 97));
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 8 * per_thread, "samples lost");
        assert_eq!(
            s.buckets.iter().sum::<u64>(),
            8 * per_thread,
            "bucket counts disagree with total"
        );
    }
}
