//! Std-only metrics and tracing for the SHIFT-SPLIT workspace.
//!
//! The paper's claims are quantitative (I/O counts, per-item work); the
//! experiments add a second axis — wall-clock — and every surface of the
//! system needs to report both in one machine-readable format. This crate
//! is that substrate. It has **zero dependencies** (the build is fully
//! offline) and provides:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s and log2-bucketed
//!   latency [`Histogram`]s. Handles are cheap `Arc` clones;
//!   [`Histogram::record`] is lock-free (atomic buckets), so hot paths
//!   (block I/O, per-item stream maintenance) can record unconditionally.
//! * A span/stopwatch API — [`timed`], [`Registry::span`] (guard form) and
//!   [`Stopwatch`] for explicit lap timing — with *hierarchical phase
//!   attribution by dotted metric names* (`transform.read_ns`,
//!   `transform.compute_ns`, `transform.writeback_ns`, …).
//! * Two exporters: a stable JSON snapshot schema
//!   ([`Registry::to_json`], `"schema": "ss-metrics-v1"`) and Prometheus
//!   text exposition ([`Registry::to_prometheus`]) served from a plain
//!   [`std::net::TcpListener`] by [`server`].
//! * A tiny JSON value/parser ([`json`]) so tests and tools can consume
//!   the snapshots without external crates.
//! * Structured per-request tracing ([`trace`]): typed span/point events
//!   in a lock-cheap ring buffer, exported as `ss-trace-v1` JSON lines
//!   or a Chrome `trace_event` dump.
//! * Sliding-interval histogram windows ([`window`]) so a long-running
//!   server's exporters report *recent* p50/p99 next to the lifetime
//!   percentiles.
//!
//! Most callers use the process-wide [`global`] registry:
//!
//! ```
//! let answer = ss_obs::timed("demo.answer_ns", || 21 * 2);
//! assert_eq!(answer, 42);
//! let snap = ss_obs::global().histogram("demo.answer_ns").snapshot();
//! assert_eq!(snap.count, 1);
//! ```

pub mod histogram;
pub mod json;
pub mod registry;
pub mod server;
pub mod span;
pub mod trace;
pub mod window;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{global, Counter, Gauge, Registry};
pub use server::{serve, MetricsServer};
pub use span::{Span, Stopwatch};
pub use trace::{SpanCtx, TraceEvent, TraceEventKind, TraceMode, Tracer};
pub use window::HistogramWindow;

/// Times `f` and records the elapsed nanoseconds into histogram `name` of
/// the [`global`] registry.
pub fn timed<R>(name: &str, f: impl FnOnce() -> R) -> R {
    global().timed(name, f)
}

/// Records `ns` into histogram `name` of the [`global`] registry.
pub fn record_ns(name: &str, ns: u64) {
    global().record_ns(name, ns);
}
