//! A minimal JSON value, writer and parser.
//!
//! The workspace builds offline, so the metrics exporters cannot lean on
//! serde; this module provides just enough JSON to emit the
//! `ss-metrics-v1` snapshot schema and to parse it back in tests and
//! tools. Integers are kept as `i128` end to end (no `f64` round-trip),
//! so `u64` counters survive exactly — the round-trip property the
//! exporter tests rely on.

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction or exponent, kept exact.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as object pairs.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i128)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v as i128)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i128)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_into(&mut out);
        f.write_str(&out)
    }
}

impl Value {
    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    let s = format!("{x}");
                    out.push_str(&s);
                    // `{}` prints integral floats without a dot; keep the
                    // number a float on re-parse.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| format!("bad integer {text:?}: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected , or ] but found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => return Err(format!("expected , or }} but found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_exactly() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(0),
            Value::Int(u64::MAX as i128),
            Value::Int(-42),
            Value::Str("a \"quoted\"\n\tstring \\".into()),
        ] {
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{v}");
        }
    }

    #[test]
    fn floats_stay_floats() {
        let v = Value::Float(2.0);
        let text = v.to_string();
        assert!(text.contains('.'), "{text}");
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(parse("1.5e3").unwrap().as_f64(), Some(1500.0));
    }

    #[test]
    fn roundtrips_nested_structures() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Int(1), Value::Int(2)])),
            (
                "b".into(),
                Value::Object(vec![("c".into(), Value::Str("x".into()))]),
            ),
        ]);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(|c| c.as_str()),
            Some("x")
        );
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nulla",
            "1 2",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , \"\\u00e9\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_array().unwrap()[1].as_str(),
            Some("é")
        );
    }
}
