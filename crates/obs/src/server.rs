//! Metrics exposition over a plain [`std::net::TcpListener`].
//!
//! A deliberately tiny HTTP/1.0-style responder: any `GET` whose path
//! ends in `.json` receives the JSON snapshot, everything else receives
//! Prometheus text exposition. One request per connection
//! (`Connection: close`), no keep-alive, no TLS — enough for `curl`, a
//! Prometheus scraper, or a test's raw [`std::net::TcpStream`].

use crate::registry::Registry;
use crate::window::HistogramWindow;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Serves `registry` on `listener` until `max_requests` requests have been
/// answered (forever when `None`). Returns the number of requests served.
pub fn serve(
    listener: &TcpListener,
    registry: &Registry,
    max_requests: Option<u64>,
) -> std::io::Result<u64> {
    let mut served = 0u64;
    loop {
        if let Some(max) = max_requests {
            if served >= max {
                return Ok(served);
            }
        }
        let (stream, _) = listener.accept()?;
        // Best-effort: a broken client connection must not kill the server.
        let _ = answer(stream, registry, None);
        served += 1;
    }
}

fn answer(
    mut stream: TcpStream,
    registry: &Registry,
    window: Option<&HistogramWindow>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    // Read the request head (or as much of it as arrives promptly).
    let mut buf = [0u8; 2048];
    let mut len = 0;
    loop {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") || len == buf.len() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/metrics");
    let (body, content_type) = if path.ends_with(".json") {
        (
            registry.to_json_value_windowed(window).to_string(),
            "application/json",
        )
    } else {
        (
            registry.to_prometheus_windowed(window),
            "text/plain; version=0.0.4",
        )
    };
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A metrics server running on a background thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves `registry` from a background thread until
    /// [`shutdown`](MetricsServer::shutdown) or drop.
    pub fn bind(addr: &str, registry: Registry) -> std::io::Result<MetricsServer> {
        MetricsServer::bind_inner(addr, registry, None)
    }

    /// Like [`bind`](MetricsServer::bind), additionally running a
    /// background ticker over `window` (at the window's own cadence) so
    /// both exporters report sliding-interval `recent` percentiles next
    /// to the lifetime numbers.
    pub fn bind_windowed(
        addr: &str,
        registry: Registry,
        window: HistogramWindow,
    ) -> std::io::Result<MetricsServer> {
        MetricsServer::bind_inner(addr, registry, Some(Arc::new(window)))
    }

    fn bind_inner(
        addr: &str,
        registry: Registry,
        window: Option<Arc<HistogramWindow>>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let ticker = match &window {
            None => None,
            Some(w) => {
                let w = Arc::clone(w);
                let stop = Arc::clone(&stop);
                Some(
                    std::thread::Builder::new()
                        .name("ss-obs-window".into())
                        .spawn(move || {
                            // Baseline immediately so `recent` starts
                            // reporting after one interval, not two.
                            w.tick();
                            let step = Duration::from_millis(25);
                            let mut since_tick = Duration::ZERO;
                            while !stop.load(Ordering::Acquire) {
                                std::thread::sleep(step.min(w.tick_every()));
                                since_tick += step;
                                if since_tick >= w.tick_every() {
                                    w.tick();
                                    since_tick = Duration::ZERO;
                                }
                            }
                        })?,
                )
            }
        };
        let handle = std::thread::Builder::new()
            .name("ss-obs-metrics".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop2.load(Ordering::Acquire) {
                            return;
                        }
                        let _ = answer(stream, &registry, window.as_deref());
                    }
                    Err(_) => return,
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
            ticker,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
        if let Some(ticker) = self.ticker.take() {
            let _ = ticker.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::window::HistogramWindow;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_prometheus_and_json_to_a_plain_tcp_stream() {
        let r = Registry::new();
        r.counter("io.block_reads").add(11);
        r.record_ns("storage.block_read_ns", 500);
        let server = MetricsServer::bind("127.0.0.1:0", r).unwrap();
        let addr = server.local_addr();

        let text = get(addr, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("ss_io_block_reads 11"), "{text}");
        assert!(text.contains("ss_storage_block_read_ns_count 1"), "{text}");

        let json_resp = get(addr, "/metrics.json");
        let body = json_resp.split("\r\n\r\n").nth(1).unwrap();
        let v = json::parse(body).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("ss-metrics-v1"));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("io.block_reads")
                .unwrap()
                .as_u64(),
            Some(11)
        );
        server.shutdown();
    }

    #[test]
    fn windowed_server_attaches_recent_views() {
        let r = Registry::new();
        let h = r.histogram("x.request_ns");
        for _ in 0..20 {
            h.record(1 << 20);
        }
        let w = HistogramWindow::new(r.clone(), Duration::from_millis(30), 2);
        let server = MetricsServer::bind_windowed("127.0.0.1:0", r.clone(), w).unwrap();
        let addr = server.local_addr();
        // The ticker baselines at start; after one interval the heavy
        // pre-start samples are outside the window.
        std::thread::sleep(Duration::from_millis(100));
        let json_resp = get(addr, "/metrics.json");
        let body = json_resp.split("\r\n\r\n").nth(1).unwrap();
        let v = json::parse(body).unwrap();
        let hv = v.get("histograms").unwrap().get("x.request_ns").unwrap();
        let recent = hv.get("recent").expect("recent view attached");
        assert!(recent.get("count").unwrap().as_u64().unwrap() <= 20);
        assert!(v.get("recent_window_s").is_some());
        assert!(get(addr, "/metrics").contains("ss_x_request_ns_recent_p99"));
        server.shutdown();
    }

    #[test]
    fn blocking_serve_honours_request_budget() {
        let r = Registry::new();
        r.counter("c").inc();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve(&listener, &r, Some(2)).unwrap());
        assert!(get(addr, "/metrics").contains("ss_c 1"));
        assert!(get(addr, "/metrics").contains("ss_c 1"));
        assert_eq!(handle.join().unwrap(), 2);
    }
}
