//! Metrics exposition over a plain [`std::net::TcpListener`].
//!
//! A deliberately tiny HTTP/1.0-style responder: any `GET` whose path
//! ends in `.json` receives the JSON snapshot, everything else receives
//! Prometheus text exposition. One request per connection
//! (`Connection: close`), no keep-alive, no TLS — enough for `curl`, a
//! Prometheus scraper, or a test's raw [`std::net::TcpStream`].

use crate::registry::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Serves `registry` on `listener` until `max_requests` requests have been
/// answered (forever when `None`). Returns the number of requests served.
pub fn serve(
    listener: &TcpListener,
    registry: &Registry,
    max_requests: Option<u64>,
) -> std::io::Result<u64> {
    let mut served = 0u64;
    loop {
        if let Some(max) = max_requests {
            if served >= max {
                return Ok(served);
            }
        }
        let (stream, _) = listener.accept()?;
        // Best-effort: a broken client connection must not kill the server.
        let _ = answer(stream, registry);
        served += 1;
    }
}

fn answer(mut stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    // Read the request head (or as much of it as arrives promptly).
    let mut buf = [0u8; 2048];
    let mut len = 0;
    loop {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") || len == buf.len() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/metrics");
    let (body, content_type) = if path.ends_with(".json") {
        (registry.to_json(), "application/json")
    } else {
        (registry.to_prometheus(), "text/plain; version=0.0.4")
    };
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A metrics server running on a background thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves `registry` from a background thread until
    /// [`shutdown`](MetricsServer::shutdown) or drop.
    pub fn bind(addr: &str, registry: Registry) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ss-obs-metrics".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stop2.load(Ordering::Acquire) {
                            return;
                        }
                        let _ = answer(stream, &registry);
                    }
                    Err(_) => return,
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_prometheus_and_json_to_a_plain_tcp_stream() {
        let r = Registry::new();
        r.counter("io.block_reads").add(11);
        r.record_ns("storage.block_read_ns", 500);
        let server = MetricsServer::bind("127.0.0.1:0", r).unwrap();
        let addr = server.local_addr();

        let text = get(addr, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("ss_io_block_reads 11"), "{text}");
        assert!(text.contains("ss_storage_block_read_ns_count 1"), "{text}");

        let json_resp = get(addr, "/metrics.json");
        let body = json_resp.split("\r\n\r\n").nth(1).unwrap();
        let v = json::parse(body).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("ss-metrics-v1"));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("io.block_reads")
                .unwrap()
                .as_u64(),
            Some(11)
        );
        server.shutdown();
    }

    #[test]
    fn blocking_serve_honours_request_budget() {
        let r = Registry::new();
        r.counter("c").inc();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve(&listener, &r, Some(2)).unwrap());
        assert!(get(addr, "/metrics").contains("ss_c 1"));
        assert!(get(addr, "/metrics").contains("ss_c 1"));
        assert_eq!(handle.join().unwrap(), 2);
    }
}
