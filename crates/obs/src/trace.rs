//! Structured request tracing: typed events in a lock-cheap ring buffer.
//!
//! The metrics in [`crate::registry`] aggregate over the process
//! lifetime; this module answers the *per-request* questions — which
//! tiles did this query touch, where did its latency go, which epoch did
//! this commit land in. The design mirrors the registry's: one
//! process-wide [`Tracer`] ([`tracer`]), cheap handles, and recording
//! paths that cost a single relaxed atomic load when tracing is off.
//!
//! # Model
//!
//! A **trace** groups everything done on behalf of one request and is
//! identified by a non-zero `u64` (allocated by [`new_trace_id`] or
//! supplied by the client). A **span** is a named, timed interval inside
//! a trace with parent linkage ([`begin_span`] / [`end_span`]); **point
//! events** ([`TraceEventKind`]) attach to whatever span is current on
//! the recording thread. The current span travels in a thread-local
//! ([`enter`], [`scoped`]) so deep layers — the buffer pool, the WAL,
//! the retry wrapper — can attribute events without threading context
//! through every signature. Spans that migrate across threads (a serve
//! request begins on the connection reader and ends on an executor)
//! carry their [`SpanCtx`] by value instead.
//!
//! # Storage and export
//!
//! Events land in a fixed-capacity ring of slots, each behind its own
//! (uncontended) mutex; a writer claims a slot with one `fetch_add` and
//! overwrites the oldest event when the ring is full — recording never
//! blocks on a reader, never allocates after the ring exists, and never
//! panics. Overwrites are counted ([`Tracer::dropped`]). In
//! [`TraceMode::Export`] each event is additionally serialised as one
//! `ss-trace-v1` JSON line to a configured writer; [`chrome_trace`]
//! converts those lines to the Chrome `trace_event` format for
//! chrome://tracing.

use crate::json::Value;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Version tag written on every exported JSON trace line.
pub const TRACE_SCHEMA: &str = "ss-trace-v1";

/// Ring capacity of the process-wide tracer (events).
pub const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

/// What the tracer does with recorded events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing; every recording path is one relaxed load.
    Off,
    /// Keep events in the in-memory ring only.
    Ring,
    /// Ring plus one `ss-trace-v1` JSON line per event to the configured
    /// writer.
    Export,
}

const MODE_OFF: u8 = 0;
const MODE_RING: u8 = 1;
const MODE_EXPORT: u8 = 2;

/// One typed trace event (the payload part; identity and timing live in
/// [`TraceEvent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened.
    SpanBegin {
        /// Static span name (e.g. `serve.request`).
        name: &'static str,
    },
    /// A span closed; `dur_ns` is its wall-clock length.
    SpanEnd {
        /// Static span name, repeated so a single line is self-contained.
        name: &'static str,
        /// Nanoseconds between begin and end.
        dur_ns: u64,
    },
    /// The buffer pool resolved one tile/block read.
    TileFetch {
        /// Block id within the store.
        tile: u64,
        /// Whether the frame was already resident.
        hit: bool,
    },
    /// A WAL record was written (not yet durable).
    WalAppend {
        /// Epoch the record publishes.
        epoch: u64,
        /// Encoded frame length in bytes.
        bytes: u64,
    },
    /// The WAL write reached disk — the commit point.
    WalFsync {
        /// Epoch the fsync makes durable.
        epoch: u64,
    },
    /// A snapshot-store commit published a new epoch.
    Commit {
        /// The published epoch.
        epoch: u64,
        /// Dirty tiles in the commit.
        tiles: u64,
    },
    /// A checkpoint folded the overlay into the base store.
    Checkpoint {
        /// Epoch the checkpoint made the new base.
        epoch: u64,
    },
    /// A transient block-I/O failure triggered a retry.
    Retry {
        /// Block id being retried.
        block: u64,
        /// 1-based attempt number that failed.
        attempt: u64,
    },
    /// A request exceeded the slow-request threshold.
    SlowRequest {
        /// Observed request duration.
        dur_ns: u64,
        /// Configured threshold.
        threshold_ns: u64,
    },
}

impl TraceEventKind {
    /// The `ev` tag used on exported JSON lines.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEventKind::SpanBegin { .. } => "span_begin",
            TraceEventKind::SpanEnd { .. } => "span_end",
            TraceEventKind::TileFetch { .. } => "tile_fetch",
            TraceEventKind::WalAppend { .. } => "wal_append",
            TraceEventKind::WalFsync { .. } => "wal_fsync",
            TraceEventKind::Commit { .. } => "commit",
            TraceEventKind::Checkpoint { .. } => "checkpoint",
            TraceEventKind::Retry { .. } => "retry",
            TraceEventKind::SlowRequest { .. } => "slow_request",
        }
    }
}

/// One recorded event: identity, timing, payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer's start instant (a per-process
    /// monotonic clock; not wall time).
    pub ts_ns: u64,
    /// Owning trace id (`0` = not tied to a request, e.g. a background
    /// checkpoint).
    pub trace: u64,
    /// The span this event belongs to (the span itself for
    /// `span_begin`/`span_end`; the enclosing span for point events; `0`
    /// for none).
    pub span: u64,
    /// Parent span id (`0` = root). Meaningful for span events.
    pub parent: u64,
    /// The typed payload.
    pub kind: TraceEventKind,
}

/// A live span's identity, returned by [`begin_span`] and consumed by
/// [`end_span`]. `Copy`, so it can ride through queues to whichever
/// thread finishes the work. A `SpanCtx` with `trace == 0` is inert:
/// ending it records nothing.
#[derive(Clone, Copy, Debug)]
pub struct SpanCtx {
    /// Owning trace id (`0` = inert).
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// Parent span id (`0` = root).
    pub parent: u64,
    name: &'static str,
    start_ns: u64,
}

impl SpanCtx {
    /// An inert context: ending it records nothing.
    pub const fn none() -> SpanCtx {
        SpanCtx {
            trace: 0,
            span: 0,
            parent: 0,
            name: "",
            start_ns: 0,
        }
    }

    /// Whether this context belongs to a live trace.
    pub fn active(&self) -> bool {
        self.trace != 0
    }
}

struct Ring {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    /// Total events ever recorded; slot = `next % capacity`.
    next: AtomicU64,
    /// Events overwritten before anyone read them (oldest-first).
    dropped: AtomicU64,
}

/// Recovers from a poisoned slot/writer mutex: tracing is diagnostics,
/// a panic elsewhere must not cascade through it.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The trace sink: mode, ring, id allocators, optional export writer.
pub struct Tracer {
    mode: AtomicU8,
    capacity: usize,
    ring: OnceLock<Ring>,
    start: Instant,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    out: Mutex<Option<Box<dyn Write + Send>>>,
}

/// The process-wide tracer used by the free functions in this module.
pub fn tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::new(DEFAULT_RING_CAPACITY))
}

impl Tracer {
    /// A fresh tracer (mode [`TraceMode::Off`]) whose ring, allocated
    /// lazily on first enable, holds `capacity` events.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            mode: AtomicU8::new(MODE_OFF),
            capacity: capacity.max(1),
            ring: OnceLock::new(),
            start: Instant::now(),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            out: Mutex::new(None),
        }
    }

    /// The current mode.
    pub fn mode(&self) -> TraceMode {
        match self.mode.load(Ordering::Relaxed) {
            MODE_RING => TraceMode::Ring,
            MODE_EXPORT => TraceMode::Export,
            _ => TraceMode::Off,
        }
    }

    /// Whether any recording is happening.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.mode.load(Ordering::Relaxed) != MODE_OFF
    }

    /// Switches to ring-only recording.
    pub fn enable_ring(&self) {
        self.ring();
        self.mode.store(MODE_RING, Ordering::Relaxed);
    }

    /// Switches to ring + JSON-lines export through `out`.
    pub fn enable_export(&self, out: Box<dyn Write + Send>) {
        self.ring();
        *lock_unpoisoned(&self.out) = Some(out);
        self.mode.store(MODE_EXPORT, Ordering::Relaxed);
    }

    /// Stops recording and flushes/drops any export writer. Events
    /// already in the ring stay readable.
    pub fn disable(&self) {
        self.mode.store(MODE_OFF, Ordering::Relaxed);
        if let Some(mut w) = lock_unpoisoned(&self.out).take() {
            let _ = w.flush();
        }
    }

    /// Flushes the export writer, if any.
    pub fn flush(&self) {
        if let Some(w) = lock_unpoisoned(&self.out).as_mut() {
            let _ = w.flush();
        }
    }

    /// Allocates a fresh non-zero trace id.
    pub fn new_trace_id(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds since the tracer's start (the `ts` clock on events).
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn ring(&self) -> &Ring {
        self.ring.get_or_init(|| Ring {
            slots: (0..self.capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Events overwritten before export (oldest dropped first).
    pub fn dropped(&self) -> u64 {
        self.ring
            .get()
            .map_or(0, |r| r.dropped.load(Ordering::Relaxed))
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.ring
            .get()
            .map_or(0, |r| r.next.load(Ordering::Relaxed))
    }

    /// Opens a span. Returns an inert context (and records nothing) when
    /// tracing is off or `trace` is zero.
    pub fn begin_span(&self, trace: u64, parent: u64, name: &'static str) -> SpanCtx {
        if trace == 0 || !self.enabled() {
            return SpanCtx::none();
        }
        let span = self.next_span.fetch_add(1, Ordering::Relaxed);
        let ts_ns = self.now_ns();
        self.record(TraceEvent {
            ts_ns,
            trace,
            span,
            parent,
            kind: TraceEventKind::SpanBegin { name },
        });
        SpanCtx {
            trace,
            span,
            parent,
            name,
            start_ns: ts_ns,
        }
    }

    /// Closes a span opened by [`begin_span`](Tracer::begin_span).
    pub fn end_span(&self, ctx: SpanCtx) {
        if !ctx.active() || !self.enabled() {
            return;
        }
        let ts_ns = self.now_ns();
        self.record(TraceEvent {
            ts_ns,
            trace: ctx.trace,
            span: ctx.span,
            parent: ctx.parent,
            kind: TraceEventKind::SpanEnd {
                name: ctx.name,
                dur_ns: ts_ns.saturating_sub(ctx.start_ns),
            },
        });
    }

    /// Records a point event under the explicit `(trace, span)` context.
    /// Pass `trace = 0` for process-level events (e.g. a background
    /// checkpoint) — they are recorded, just not tied to a request.
    pub fn event_for(&self, trace: u64, span: u64, kind: TraceEventKind) {
        if !self.enabled() {
            return;
        }
        self.record(TraceEvent {
            ts_ns: self.now_ns(),
            trace,
            span,
            parent: 0,
            kind,
        });
    }

    fn record(&self, ev: TraceEvent) {
        let ring = self.ring();
        let n = ring.next.fetch_add(1, Ordering::Relaxed);
        let cap = ring.slots.len() as u64;
        *lock_unpoisoned(&ring.slots[(n % cap) as usize]) = Some(ev);
        if n >= cap {
            ring.dropped.fetch_add(1, Ordering::Relaxed);
        }
        if self.mode.load(Ordering::Relaxed) == MODE_EXPORT {
            if let Some(w) = lock_unpoisoned(&self.out).as_mut() {
                let _ = writeln!(w, "{}", event_value(&ev));
            }
        }
    }

    /// Copies the ring's surviving events, oldest first. Concurrent
    /// writers may overwrite slots mid-copy; each event is still read
    /// whole (per-slot locking), so the copy is a consistent sample, not
    /// a serialisable snapshot.
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(ring) = self.ring.get() else {
            return Vec::new();
        };
        let n = ring.next.load(Ordering::Relaxed);
        let cap = ring.slots.len() as u64;
        (n.saturating_sub(cap)..n)
            .filter_map(|i| *lock_unpoisoned(&ring.slots[(i % cap) as usize]))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Thread-local current-span context.

thread_local! {
    static CTX: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

/// The recording thread's current `(trace, span)` (`(0, 0)` = none).
pub fn current() -> (u64, u64) {
    CTX.with(|c| c.get())
}

/// Restores the previous thread-local context on drop (see [`enter`]).
pub struct EnterGuard {
    prev: (u64, u64),
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// Makes `ctx` the thread's current span until the guard drops, so
/// point events recorded by deeper layers attach to it.
pub fn enter(ctx: SpanCtx) -> EnterGuard {
    let prev = CTX.with(|c| c.replace((ctx.trace, ctx.span)));
    EnterGuard { prev }
}

/// A child span of the thread's current span, closed (and the previous
/// context restored) on drop. Inert when tracing is off or the thread
/// has no current trace.
pub struct ScopedSpan {
    ctx: SpanCtx,
    prev: (u64, u64),
}

impl Drop for ScopedSpan {
    fn drop(&mut self) {
        if self.ctx.active() {
            CTX.with(|c| c.set(self.prev));
            tracer().end_span(self.ctx);
        }
    }
}

/// Opens a child span of the thread's current span on the global tracer.
pub fn scoped(name: &'static str) -> ScopedSpan {
    if !tracer().enabled() {
        return ScopedSpan {
            ctx: SpanCtx::none(),
            prev: (0, 0),
        };
    }
    let (trace, parent) = current();
    if trace == 0 {
        return ScopedSpan {
            ctx: SpanCtx::none(),
            prev: (0, 0),
        };
    }
    let ctx = tracer().begin_span(trace, parent, name);
    let prev = CTX.with(|c| c.replace((trace, ctx.span)));
    ScopedSpan { ctx, prev }
}

// ---------------------------------------------------------------------------
// Global-tracer conveniences (the instrumentation API).

/// Whether the global tracer is recording.
#[inline]
pub fn enabled() -> bool {
    tracer().enabled()
}

/// Allocates a trace id on the global tracer.
pub fn new_trace_id() -> u64 {
    tracer().new_trace_id()
}

/// Opens a span on the global tracer.
pub fn begin_span(trace: u64, parent: u64, name: &'static str) -> SpanCtx {
    tracer().begin_span(trace, parent, name)
}

/// Closes a span on the global tracer.
pub fn end_span(ctx: SpanCtx) {
    tracer().end_span(ctx)
}

/// Records a point event under the thread's current context. Skipped
/// (one relaxed load, one TLS read) when the thread is not inside a
/// traced request — so untraced background work never floods the ring.
#[inline]
pub fn event(kind: TraceEventKind) {
    let t = tracer();
    if !t.enabled() {
        return;
    }
    let (trace, span) = current();
    if trace == 0 {
        return;
    }
    t.event_for(trace, span, kind);
}

/// Records a point event even without a request context (trace id 0):
/// commit-pipeline events keep their epoch visibility when triggered by
/// background work. Uses the thread's context when one is set.
#[inline]
pub fn pipeline_event(kind: TraceEventKind) {
    let t = tracer();
    if !t.enabled() {
        return;
    }
    let (trace, span) = current();
    t.event_for(trace, span, kind);
}

// ---------------------------------------------------------------------------
// JSON-lines export (`ss-trace-v1`) and Chrome trace_event conversion.

/// Serialises one event as an `ss-trace-v1` JSON object.
pub fn event_value(ev: &TraceEvent) -> Value {
    let mut pairs = vec![
        ("schema".to_string(), Value::from(TRACE_SCHEMA)),
        ("ts".to_string(), Value::from(ev.ts_ns)),
        ("trace".to_string(), Value::from(ev.trace)),
        ("span".to_string(), Value::from(ev.span)),
        ("parent".to_string(), Value::from(ev.parent)),
        ("ev".to_string(), Value::from(ev.kind.tag())),
    ];
    match ev.kind {
        TraceEventKind::SpanBegin { name } => {
            pairs.push(("name".into(), Value::from(name)));
        }
        TraceEventKind::SpanEnd { name, dur_ns } => {
            pairs.push(("name".into(), Value::from(name)));
            pairs.push(("dur".into(), Value::from(dur_ns)));
        }
        TraceEventKind::TileFetch { tile, hit } => {
            pairs.push(("tile".into(), Value::from(tile)));
            pairs.push(("hit".into(), Value::Bool(hit)));
        }
        TraceEventKind::WalAppend { epoch, bytes } => {
            pairs.push(("epoch".into(), Value::from(epoch)));
            pairs.push(("bytes".into(), Value::from(bytes)));
        }
        TraceEventKind::WalFsync { epoch } => {
            pairs.push(("epoch".into(), Value::from(epoch)));
        }
        TraceEventKind::Commit { epoch, tiles } => {
            pairs.push(("epoch".into(), Value::from(epoch)));
            pairs.push(("tiles".into(), Value::from(tiles)));
        }
        TraceEventKind::Checkpoint { epoch } => {
            pairs.push(("epoch".into(), Value::from(epoch)));
        }
        TraceEventKind::Retry { block, attempt } => {
            pairs.push(("block".into(), Value::from(block)));
            pairs.push(("attempt".into(), Value::from(attempt)));
        }
        TraceEventKind::SlowRequest {
            dur_ns,
            threshold_ns,
        } => {
            pairs.push(("dur".into(), Value::from(dur_ns)));
            pairs.push(("threshold".into(), Value::from(threshold_ns)));
        }
    }
    Value::Object(pairs)
}

/// Converts parsed `ss-trace-v1` lines into a Chrome `trace_event`
/// document (`{"traceEvents": [...]}`) for chrome://tracing / Perfetto.
///
/// Every `span_end` becomes one complete (`ph: "X"`) slice — begin/end
/// matching is unnecessary because the end line carries its duration —
/// and every point event becomes a thread-scoped instant (`ph: "i"`).
/// The trace id is mapped to `tid`, so each request renders as its own
/// row and parent linkage shows as slice nesting on that row.
pub fn chrome_trace(lines: &[Value]) -> Value {
    let us = |ns: u64| Value::Float(ns as f64 / 1_000.0);
    let mut out = Vec::new();
    for line in lines {
        let field = |k: &str| line.get(k).and_then(Value::as_u64).unwrap_or(0);
        let ev = line.get("ev").and_then(Value::as_str).unwrap_or("");
        let name = line
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or(ev)
            .to_string();
        let mut args = Vec::new();
        for key in [
            "span",
            "parent",
            "tile",
            "epoch",
            "bytes",
            "tiles",
            "block",
            "attempt",
            "threshold",
        ] {
            if let Some(v) = line.get(key) {
                if !matches!(v, Value::Null) {
                    args.push((key.to_string(), v.clone()));
                }
            }
        }
        if let Some(hit) = line.get("hit") {
            args.push(("hit".into(), hit.clone()));
        }
        let common = |ph: &str, ts_ns: u64| {
            vec![
                ("name".to_string(), Value::from(name.as_str())),
                ("ph".to_string(), Value::from(ph)),
                ("ts".to_string(), us(ts_ns)),
                ("pid".to_string(), Value::from(1u64)),
                ("tid".to_string(), Value::from(field("trace"))),
            ]
        };
        match ev {
            "span_begin" => {} // the matching span_end carries the slice
            "span_end" => {
                let dur = field("dur");
                let mut pairs = common("X", field("ts").saturating_sub(dur));
                pairs.push(("dur".into(), us(dur)));
                pairs.push(("args".into(), Value::Object(args)));
                out.push(Value::Object(pairs));
            }
            _ => {
                let mut pairs = common("i", field("ts"));
                pairs.push(("s".into(), Value::from("t")));
                pairs.push(("args".into(), Value::Object(args)));
                out.push(Value::Object(pairs));
            }
        }
    }
    Value::Object(vec![("traceEvents".into(), Value::Array(out))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn off_mode_records_nothing_and_contexts_are_inert() {
        let t = Tracer::new(8);
        let ctx = t.begin_span(7, 0, "x");
        assert!(!ctx.active());
        t.end_span(ctx);
        t.event_for(7, 0, TraceEventKind::WalFsync { epoch: 1 });
        assert_eq!(t.recorded(), 0);
        assert_eq!(t.events().len(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn spans_link_parents_and_time_durations() {
        let t = Tracer::new(64);
        t.enable_ring();
        let root = t.begin_span(t.new_trace_id(), 0, "root");
        let child = t.begin_span(root.trace, root.span, "child");
        t.event_for(
            child.trace,
            child.span,
            TraceEventKind::TileFetch { tile: 3, hit: true },
        );
        t.end_span(child);
        t.end_span(root);
        let evs = t.events();
        assert_eq!(evs.len(), 5);
        assert!(matches!(
            evs[0].kind,
            TraceEventKind::SpanBegin { name: "root" }
        ));
        assert_eq!(evs[1].parent, root.span, "child parented under root");
        assert_eq!(evs[2].span, child.span, "event attributed to child");
        match evs[3].kind {
            TraceEventKind::SpanEnd { name, .. } => assert_eq!(name, "child"),
            other => panic!("expected child end, got {other:?}"),
        }
        // Timestamps are monotone over the ring.
        for w in evs.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn ring_wraparound_drops_oldest_first_and_counts_drops() {
        let t = Tracer::new(4);
        t.enable_ring();
        for i in 1..=10u64 {
            t.event_for(1, 0, TraceEventKind::WalFsync { epoch: i });
        }
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.dropped(), 6, "10 events through a 4-slot ring drop 6");
        let epochs: Vec<u64> = t
            .events()
            .iter()
            .map(|e| match e.kind {
                TraceEventKind::WalFsync { epoch } => epoch,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(
            epochs,
            vec![7, 8, 9, 10],
            "newest survive, oldest-first order"
        );
    }

    #[test]
    fn concurrent_wraparound_never_panics_and_counts_add_up() {
        let t = std::sync::Arc::new(Tracer::new(8));
        t.enable_ring();
        let threads = 4;
        let per = 1000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..per {
                        t.event_for(
                            1,
                            0,
                            TraceEventKind::Retry {
                                block: i,
                                attempt: 1,
                            },
                        );
                    }
                });
            }
        });
        assert_eq!(t.recorded(), threads * per);
        assert_eq!(t.dropped(), threads * per - 8);
        assert!(t.events().len() <= 8);
    }

    #[test]
    fn scoped_spans_nest_through_the_thread_local() {
        // Uses the process-global tracer: filter by our own trace id so
        // concurrently running tests cannot interfere.
        tracer().enable_ring();
        let trace = new_trace_id();
        let root = begin_span(trace, 0, "tls.root");
        {
            let _g = enter(root);
            let _child = scoped("tls.child");
            event(TraceEventKind::TileFetch {
                tile: 9,
                hit: false,
            });
        }
        end_span(root);
        let evs: Vec<TraceEvent> = tracer()
            .events()
            .into_iter()
            .filter(|e| e.trace == trace)
            .collect();
        assert_eq!(evs.len(), 5);
        let child_span = evs[1].span;
        assert_eq!(evs[1].parent, root.span);
        assert_eq!(evs[2].span, child_span, "event lands in the scoped child");
        assert!(matches!(
            evs[3].kind,
            TraceEventKind::SpanEnd {
                name: "tls.child",
                ..
            }
        ));
        assert_eq!(current(), (0, 0), "context restored");
    }

    #[test]
    fn events_outside_a_trace_are_skipped_but_pipeline_events_are_kept() {
        // Sentinel payloads, because the global tracer is shared with
        // concurrently running tests.
        std::thread::spawn(|| {
            tracer().enable_ring();
            event(TraceEventKind::TileFetch {
                tile: 987_654_321,
                hit: true,
            });
            pipeline_event(TraceEventKind::Checkpoint { epoch: 987_654_321 });
        })
        .join()
        .unwrap();
        let evs = tracer().events();
        assert!(
            !evs.iter().any(|e| matches!(
                e.kind,
                TraceEventKind::TileFetch {
                    tile: 987_654_321,
                    ..
                }
            )),
            "unattributed point events are dropped"
        );
        assert!(
            evs.iter()
                .any(|e| matches!(e.kind, TraceEventKind::Checkpoint { epoch: 987_654_321 })),
            "pipeline events survive without a request context"
        );
    }

    #[test]
    fn export_writes_parseable_schema_tagged_lines() {
        let t = Tracer::new(32);
        let buf = std::sync::Arc::new(Mutex::new(Vec::<u8>::new()));
        struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        t.enable_export(Box::new(SharedBuf(std::sync::Arc::clone(&buf))));
        let root = t.begin_span(t.new_trace_id(), 0, "req");
        t.event_for(
            root.trace,
            root.span,
            TraceEventKind::WalAppend {
                epoch: 3,
                bytes: 128,
            },
        );
        t.end_span(root);
        t.disable();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<Value> = text.lines().map(|l| json::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert_eq!(l.get("schema").unwrap().as_str(), Some(TRACE_SCHEMA));
        }
        assert_eq!(lines[1].get("ev").unwrap().as_str(), Some("wal_append"));
        assert_eq!(lines[1].get("epoch").unwrap().as_u64(), Some(3));
        assert!(lines[2].get("dur").unwrap().as_u64().is_some());
    }

    #[test]
    fn chrome_conversion_builds_slices_and_instants() {
        let t = Tracer::new(32);
        t.enable_ring();
        let root = t.begin_span(t.new_trace_id(), 0, "req");
        t.event_for(
            root.trace,
            root.span,
            TraceEventKind::TileFetch {
                tile: 4,
                hit: false,
            },
        );
        t.end_span(root);
        let lines: Vec<Value> = t.events().iter().map(event_value).collect();
        let doc = chrome_trace(&lines);
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        // begin is folded into the X slice: 1 slice + 1 instant.
        assert_eq!(evs.len(), 2);
        let slice = evs
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .expect("one complete slice");
        assert_eq!(slice.get("name").unwrap().as_str(), Some("req"));
        assert_eq!(slice.get("tid").unwrap().as_u64(), Some(root.trace));
        let inst = evs
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("i"))
            .expect("one instant");
        assert_eq!(inst.get("name").unwrap().as_str(), Some("tile_fetch"));
    }
}
