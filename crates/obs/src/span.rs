//! Stopwatches and drop-guard spans.

use crate::histogram::Histogram;
use std::time::Instant;

/// An explicit stopwatch for lap-style phase timing.
///
/// One `Stopwatch` per loop iteration with a [`lap_ns`](Stopwatch::lap_ns)
/// per phase is how the transform drivers attribute ingest time to
/// read/compute/writeback without nesting guards:
///
/// ```
/// let mut sw = ss_obs::Stopwatch::start();
/// // ... phase one ...
/// let read_ns = sw.lap_ns();
/// // ... phase two ...
/// let compute_ns = sw.lap_ns();
/// assert!(read_ns < 1_000_000_000 && compute_ns < 1_000_000_000);
/// ```
#[derive(Clone, Debug)]
pub struct Stopwatch {
    start: Instant,
    lap: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        let now = Instant::now();
        Stopwatch {
            start: now,
            lap: now,
        }
    }

    /// Nanoseconds since [`start`](Stopwatch::start).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Milliseconds since [`start`](Stopwatch::start) — the single
    /// wall-clock conversion every experiment binary reports through.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Nanoseconds since the previous lap (or start), and resets the lap.
    pub fn lap_ns(&mut self) -> u64 {
        let now = Instant::now();
        let ns = now.duration_since(self.lap).as_nanos() as u64;
        self.lap = now;
        ns
    }
}

/// A guard that records its lifetime into a [`Histogram`] when dropped.
///
/// Created by [`Registry::span`](crate::Registry::span); the explicit
/// counterpart of [`timed`](crate::timed) for spans that cross scope
/// boundaries (early returns, `?`, multi-branch flows).
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    start: Instant,
}

impl Span {
    pub(crate) fn new(hist: Histogram) -> Self {
        Span {
            hist,
            start: Instant::now(),
        }
    }

    /// Nanoseconds since the span opened.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn stopwatch_laps_partition_elapsed() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let a = sw.lap_ns();
        let b = sw.lap_ns();
        assert!(a >= 2_000_000, "first lap {a}ns");
        assert!(b <= sw.elapsed_ns());
        assert!(sw.elapsed_ms() >= 2.0);
    }

    #[test]
    fn span_records_on_drop_even_on_early_exit() {
        let r = Registry::new();
        let run = |fail: bool| -> Result<(), ()> {
            let _span = r.span("s.ns");
            if fail {
                return Err(());
            }
            Ok(())
        };
        run(false).unwrap();
        run(true).unwrap_err();
        assert_eq!(r.histogram("s.ns").count(), 2);
    }
}
