//! Out-of-core transformation of a 4-d climate cube — the paper's
//! Section 6.1 scenario end to end.
//!
//! A TEMPERATURE-like `lat × lon × alt × time` cube is transformed into
//! the wavelet domain three ways (Vitter baseline, SHIFT-SPLIT standard,
//! SHIFT-SPLIT non-standard with z-order), then OLAP-style queries run
//! against the tiled store.
//!
//! ```sh
//! cargo run --release --example climate_cube
//! ```

use shiftsplit::core::tiling::{NonStandardTiling, StandardTiling};
use shiftsplit::datagen::temperature_cube;
use shiftsplit::query;
use shiftsplit::storage::{wstore::mem_store, IoStats};
use shiftsplit::transform::{
    transform_nonstandard_zorder, transform_standard, vitter_transform_standard, ArraySource,
};

const N: u32 = 4; // 16 per axis -> 16^4 = 65,536 cells
const M: u32 = 2; // 4^4 = 256-coefficient memory chunks
const B: u32 = 2; // 4^4 = 256-coefficient (2 KB) blocks

fn main() {
    let side = 1usize << N;
    println!("generating {side}^4 TEMPERATURE-like cube…");
    let cube = temperature_cube(&[side; 4], 42);
    let src = ArraySource::new(&cube, &[M; 4]);
    let mem = 1usize << (4 * M);
    let block = 1usize << (4 * B);

    // Vitter-style baseline.
    let stats = IoStats::new();
    let _ = vitter_transform_standard(&src, mem, block, stats.clone());
    println!("Vitter baseline:           {}", stats.snapshot());

    // SHIFT-SPLIT standard form.
    let stats_s = IoStats::new();
    let mut std_store = mem_store(
        StandardTiling::new(&[N; 4], &[B; 4]),
        (mem / block).max(1),
        stats_s.clone(),
    );
    transform_standard(&src, &mut std_store, false);
    println!("SHIFT-SPLIT standard:      {}", stats_s.snapshot());

    // SHIFT-SPLIT non-standard form, z-order schedule.
    let stats_z = IoStats::new();
    let mut ns_store = mem_store(
        NonStandardTiling::new(4, N, B),
        (mem / block).max(1),
        stats_z.clone(),
    );
    let report = transform_nonstandard_zorder(&src, &mut ns_store);
    println!(
        "SHIFT-SPLIT non-standard:  {} (crest cache peak: {} coeffs)",
        stats_z.snapshot(),
        report.peak_crest_cache
    );

    // OLAP queries on the standard store.
    println!("\nqueries on the tiled standard-form store:");
    stats_s.reset();
    let point = query::point_standard(&mut std_store, &[N; 4], &[3, 7, 1, 12]);
    println!(
        "  temperature at (lat 3, lon 7, alt 1, t 12) = {point:.2}  [{}]",
        stats_s.snapshot()
    );
    assert!((point - cube.get(&[3, 7, 1, 12])).abs() < 1e-9);

    stats_s.reset();
    let lo = [0usize, 0, 0, 0];
    let hi = [7usize, 15, 0, 15];
    let sum = query::range_sum_standard(&mut std_store, &[N; 4], &lo, &hi);
    let cells = 8 * 16 * 16;
    println!(
        "  mean surface temperature, southern hemisphere = {:.2}  [{}]",
        sum / cells as f64,
        stats_s.snapshot()
    );
    assert!((sum - cube.region_sum(&lo, &hi)).abs() < 1e-6);

    // Extract a small spatio-temporal region via inverse SHIFT-SPLIT.
    stats_s.reset();
    let region =
        query::reconstruct_box_standard(&mut std_store, &[N; 4], &[4, 4, 0, 8], &[7, 7, 3, 11]);
    println!(
        "  extracted a 4x4x4x4 region [{}]; its mean = {:.2}",
        stats_s.snapshot(),
        region.total() / region.len() as f64
    );
    println!("done.");
}
