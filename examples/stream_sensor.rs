//! Maintaining a best-K wavelet synopsis of a live sensor stream —
//! the paper's Section 5.3 / 6.3 scenario.
//!
//! A 2^18-reading sensor stream is summarised two ways: per-item crest
//! maintenance (the Gilbert et al. baseline) and the paper's buffered
//! SHIFT-SPLIT maintenance (Result 3). Both end with the *same* synopsis;
//! the buffered variant does a fraction of the work.
//!
//! ```sh
//! cargo run --release --example stream_sensor
//! ```

use shiftsplit::datagen::SensorStream;
use shiftsplit::stream::stream1d::reconstruct_from_entries;
use shiftsplit::stream::{offline_best_k_sse, sse, BufferedStream, PerItemStream};

const N_LEVELS: u32 = 18;
const K: usize = 48;
const BUF_LEVELS: u32 = 7; // 128-item buffer

fn main() {
    let n = 1usize << N_LEVELS;
    println!("streaming {n} sensor readings, maintaining the best {K} wavelet terms…\n");

    let mut per_item = PerItemStream::new(K, N_LEVELS);
    let mut buffered = BufferedStream::new(K, BUF_LEVELS, N_LEVELS);
    let mut history = Vec::with_capacity(n);
    for x in SensorStream::new(2024).take(n) {
        per_item.push(x);
        buffered.push(x);
        history.push(x);
    }

    println!(
        "per-item maintenance: {:>12} coefficient ops  ({:.2} per item)",
        per_item.work(),
        per_item.work() as f64 / n as f64
    );
    println!(
        "buffered (B = {:>4}):  {:>12} coefficient ops  ({:.2} per item)",
        buffered.buffer_capacity(),
        buffered.work(),
        buffered.work() as f64 / n as f64
    );
    println!(
        "speedup: {:.1}x\n",
        per_item.work() as f64 / buffered.work() as f64
    );

    // Both maintainers answer queries from K terms + the running average.
    let approx_pi = reconstruct_from_entries(per_item.average(), &per_item.entries(), n);
    let approx_bf = reconstruct_from_entries(buffered.average(), &buffered.entries(), n);
    let best = offline_best_k_sse(&history, K);
    println!("approximation error (SSE), {K}-term synopsis of {n} readings:");
    println!("  per-item:        {:.1}", sse(&history, &approx_pi));
    println!("  buffered:        {:.1}", sse(&history, &approx_bf));
    println!("  offline best-K:  {best:.1}");

    // Reading the synopsis: the biggest events the stream saw.
    println!("\ntop 5 retained coefficients (orthonormal magnitude):");
    for e in buffered.entries().iter().take(5) {
        let start = e.key.k << e.key.level;
        println!(
            "  level {:>2} @ items [{start}, {}]: value {:>8.3}, magnitude {:>8.2}",
            e.key.level,
            start + (1usize << e.key.level) - 1,
            e.value,
            e.magnitude()
        );
    }
    println!("\ndone.");
}
