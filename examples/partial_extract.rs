//! Extracting regions from a wavelet-transformed image — the Section 5.4
//! dilemma, measured.
//!
//! Given the transform of a 512 × 512 dataset, extract regions of growing
//! size with the three strategies the paper weighs (full inverse,
//! point-by-point, inverse SHIFT-SPLIT) and watch the crossovers.
//!
//! ```sh
//! cargo run --release --example partial_extract
//! ```

use shiftsplit::array::{MultiIndexIter, NdArray, Shape};
use shiftsplit::core::standard;
use shiftsplit::core::tiling::StandardTiling;
use shiftsplit::query::recon;
use shiftsplit::storage::{wstore::mem_store, IoStats};

const N: u32 = 9; // 512 x 512

fn main() {
    let side = 1usize << N;
    // A synthetic "image": smooth gradients plus a few sharp features.
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        let (x, y) = (idx[0] as f64, idx[1] as f64);
        (x / 64.0).sin() * 40.0
            + (y / 48.0).cos() * 30.0
            + if (128..160).contains(&idx[0]) && (300..360).contains(&idx[1]) {
                80.0
            } else {
                0.0
            }
    });
    let t = standard::forward_to(&data);
    let stats = IoStats::new();
    let mut cs = mem_store(
        StandardTiling::new(&[N; 2], &[3; 2]),
        1 << 14,
        stats.clone(),
    );
    for idx in MultiIndexIter::new(&[side, side]) {
        cs.write(&idx, t.get(&idx));
    }
    cs.flush();

    println!("extracting M x M regions from a {side} x {side} transform:\n");
    println!(
        "{:>4} | {:>16} | {:>16} | {:>14}",
        "M", "shift-split", "point-by-point", "full inverse"
    );
    println!("{:->4}-+-{:->16}-+-{:->16}-+-{:->14}", "", "", "", "");
    for m in [4usize, 16, 64, 256] {
        let lo = [128usize, 320usize.min(side - m)];
        let hi = [lo[0] + m - 1, lo[1] + m - 1];

        cs.clear_cache();
        stats.reset();
        let a = recon::reconstruct_box_standard(&mut cs, &[N; 2], &lo, &hi);
        let ss = stats.snapshot().coeff_reads;

        cs.clear_cache();
        stats.reset();
        let b = recon::reconstruct_pointwise_standard(&mut cs, &[N; 2], &lo, &hi);
        let pw = stats.snapshot().coeff_reads;

        cs.clear_cache();
        stats.reset();
        let c = recon::reconstruct_full_standard(&mut cs, &[N; 2], &lo, &hi);
        let full = stats.snapshot().coeff_reads;

        assert!(a.max_abs_diff(&b) < 1e-9 && a.max_abs_diff(&c) < 1e-9);
        println!("{m:>4} | {ss:>10} reads | {pw:>10} reads | {full:>8} reads");
    }
    println!("\nshift-split wins at every size; point-by-point is never preferable to it,");
    println!("and the full inverse only breaks even as M approaches N (Result 6).");
}
