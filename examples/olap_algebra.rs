//! OLAP-style analysis **entirely in the wavelet domain**: marginals,
//! slices, cube algebra and approximate/progressive aggregates.
//!
//! A 3-d climate cube (lat × alt × time) is transformed once; every
//! analysis step below manipulates coefficients only — no reconstruction
//! until the final numbers are printed.
//!
//! ```sh
//! cargo run --release --example olap_algebra
//! ```

use shiftsplit::array::{MultiIndexIter, NdArray, Shape};
use shiftsplit::core::tiling::StandardTiling;
use shiftsplit::core::{algebra, standard};
use shiftsplit::datagen::temperature_cube;
use shiftsplit::query::{progressive_range_sum, StoredSynopsis};
use shiftsplit::storage::{wstore::mem_store, IoStats};

fn main() {
    // lat x lon x alt x time, then project out longitude to keep it 3-d.
    let cube4 = temperature_cube(&[16, 16, 8, 64], 2026);
    let t4 = standard::forward_to(&cube4);
    println!("transformed a 16x16x8x64 climate cube once; all analysis below is");
    println!("coefficient-space only.\n");

    // --- 1. Marginalise: average over longitude (axis 1). ---
    let t3 = algebra::project_avg(&t4, 1);
    println!("1. project_avg(lon): 4-d -> 3-d transform, zero reconstruction");

    // --- 2. Zonal-mean time series: also average over altitude & latitude. ---
    let t_lat_time = algebra::project_avg(&t3, 1); // drop altitude
    let t_time = algebra::project_avg(&t_lat_time, 0); // drop latitude
    let series = shiftsplit::core::haar1d::inverse_to_vec(t_time.as_slice());
    println!(
        "2. global-mean temperature: first/mid/last epoch = {:.2} / {:.2} / {:.2}",
        series[0], series[32], series[63]
    );

    // --- 3. Difference of two epochs, still in coefficients. ---
    let early = algebra::slice_at(&t_time_as_2d(&t_time), 1, 0);
    let late = algebra::slice_at(&t_time_as_2d(&t_time), 1, 63);
    let warming = algebra::add_scaled(&late, &early, -1.0);
    println!(
        "3. warming (epoch 63 − epoch 0) computed by cube algebra: {:.2}",
        warming.get(&[0])
    );

    // --- 4. Coarsen time 2x (multiresolution zoom-out): free in wavelets. ---
    let coarser = algebra::coarsen_axis(&t3, 2);
    println!(
        "4. coarsen(time): {} -> {} coefficients, a pure re-slice",
        t3.len(),
        coarser.len()
    );

    // --- 5. Approximate aggregates from a tiny synopsis. ---
    let lat_alt_time = inverse3(&t3);
    let mut cs = mem_store(
        StandardTiling::new(&[4, 3, 6], &[2, 1, 2]),
        1 << 12,
        IoStats::new(),
    );
    for idx in MultiIndexIter::new(&[16, 8, 64]) {
        cs.write(&idx, t3.get(&idx));
    }
    let syn = StoredSynopsis::build(&mut cs, &[4, 3, 6], 128);
    let exact = lat_alt_time.region_sum(&[4, 0, 16], &[11, 3, 47]);
    let approx = syn.range_sum(&[4, 0, 16], &[11, 3, 47]);
    println!(
        "5. 128-term synopsis ({}% of coefficients): range sum {:.1} vs exact {:.1} ({:.2}% error)",
        100.0 * 128.0 / (16.0 * 8.0 * 64.0),
        approx,
        exact,
        100.0 * (approx - exact).abs() / exact.abs().max(1.0)
    );

    // --- 6. Progressive refinement on the exact store. ---
    let estimates = progressive_range_sum(&mut cs, &[4, 3, 6], &[4, 0, 16], &[11, 3, 47]);
    print!("6. progressive estimates: ");
    for e in &estimates {
        print!("{e:.0} ");
    }
    println!("(exact: {exact:.0})");
    println!("\ndone.");
}

/// Views a 1-d time transform as `1 × 64` so the 2-d algebra ops apply.
fn t_time_as_2d(t: &NdArray<f64>) -> NdArray<f64> {
    NdArray::from_vec(Shape::new(&[1, t.len()]), t.as_slice().to_vec())
}

fn inverse3(t: &NdArray<f64>) -> NdArray<f64> {
    let mut out = t.clone();
    standard::inverse(&mut out);
    out
}
