//! Quickstart: transform, query, update and reconstruct — all in the
//! wavelet domain.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use shiftsplit::array::{NdArray, Shape};
use shiftsplit::core::tiling::StandardTiling;
use shiftsplit::core::{haar1d, split, standard};
use shiftsplit::query;
use shiftsplit::storage::{wstore::mem_store, IoStats};

fn main() {
    // --- 1. The paper's running example: a tiny 1-d Haar transform. ---
    let mut v = vec![3.0, 5.0, 7.0, 5.0];
    haar1d::forward(&mut v);
    println!("DWT of [3, 5, 7, 5]      = {v:?}"); // [5, -1, -1, 1]

    // --- 2. A 2-d dataset, transformed in the standard form. ---
    let side = 64usize;
    let data = NdArray::from_fn(Shape::cube(2, side), |idx| {
        ((idx[0] as f64 - 32.0).powi(2) + (idx[1] as f64 - 32.0).powi(2)).sqrt()
    });
    let coeffs = standard::forward_to(&data);
    println!(
        "grand mean via DC coefficient = {:.4} (direct: {:.4})",
        coeffs.get(&[0, 0]),
        data.total() / data.len() as f64
    );

    // --- 3. Store the coefficients in disk tiles and query them. ---
    let stats = IoStats::new();
    let mut store = mem_store(StandardTiling::new(&[6, 6], &[2, 2]), 256, stats.clone());
    for idx in shiftsplit::array::MultiIndexIter::new(&[side, side]) {
        store.write(&idx, coeffs.get(&idx));
    }
    store.flush();
    store.clear_cache();

    stats.reset();
    let value = query::point_standard(&mut store, &[6, 6], &[17, 42]);
    println!(
        "point (17,42) = {value:.4} using {} block reads",
        stats.take().block_reads
    );

    let sum = query::range_sum_standard(&mut store, &[6, 6], &[8, 8], &[23, 39]);
    println!(
        "range-sum [8..23]x[8..39] = {sum:.2} using {} block reads (naive would scan {} cells)",
        stats.take().block_reads,
        16 * 32
    );

    // --- 4. Batch-update a dyadic region *in the wavelet domain*. ---
    // Add +10 to the 16x16 block at (16, 32) without reconstructing.
    let delta = NdArray::from_fn(Shape::cube(2, 16), |_| 10.0);
    let delta_t = standard::forward_to(&delta);
    split::standard_deltas(&delta_t, &[6, 6], &[1, 2], |idx, d| {
        store.add(idx, d);
    });
    store.flush();
    let after = query::point_standard(&mut store, &[6, 6], &[17, 42]);
    println!("point (17,42) after +10 block update = {after:.4}");
    assert!((after - (value + 10.0)).abs() < 1e-9);

    // --- 5. Partially reconstruct a region (Result 6). ---
    stats.reset();
    let region = query::reconstruct_box_standard(&mut store, &[6, 6], &[16, 32], &[19, 35]);
    println!(
        "reconstructed 4x4 region with {} coefficient reads; corner = {:.4}",
        stats.take().coeff_reads,
        region.get(&[1, 3])
    );
    println!("done.");
}
