//! Appending monthly data to a wavelet-transformed rainfall archive —
//! the paper's Section 6.2 scenario, on a **real file-backed block store**.
//!
//! Ten years of PRECIPITATION-like data arrive one 8 × 8 × 32 month at a
//! time. Every append runs entirely in the wavelet domain; when the time
//! domain fills up it is doubled in place (Section 5.2), visible below as
//! I/O spikes. The transform lives in disk blocks in a temp file.
//!
//! ```sh
//! cargo run --release --example precipitation_append
//! ```

use shiftsplit::datagen::precipitation_month;
use shiftsplit::query;
use shiftsplit::storage::{FileBlockStore, IoStats};
use shiftsplit::transform::Appender;

const YEARS: usize = 10;

fn main() {
    let dir = std::env::temp_dir().join(format!("ss_append_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    println!("block files in {}", dir.display());

    let stats = IoStats::new();
    let file_stats = stats.clone();
    let dir2 = dir.clone();
    let mut generation = 0usize;
    let mut app = Appender::new(
        &[3, 3, 5], // 8 x 8 x 32: one month
        &[3, 3, 2], // 2 KB tiles (256 coefficients)
        2,          // time axis grows
        move |cap, blocks| {
            generation += 1;
            let path = dir2.join(format!("gen{generation}.blocks"));
            FileBlockStore::create(&path, cap, blocks, file_stats.clone())
                .expect("create block file")
        },
        1 << 12,
        stats.clone(),
    );

    let months = YEARS * 12;
    let mut yearly_blocks = 0u64;
    for month in 0..months {
        let chunk = precipitation_month(8, 8, 32, month, 7);
        let before = stats.snapshot();
        app.append(&chunk);
        let cost = stats.snapshot().since(&before);
        yearly_blocks += cost.blocks();
        let expanded = cost.blocks() > 4_000; // expansion spike heuristic for display
        if month % 12 == 11 {
            println!(
                "year {:>2}: {:>8} block I/Os{}",
                month / 12 + 1,
                yearly_blocks,
                if expanded {
                    "   <- domain doubled this month"
                } else {
                    ""
                }
            );
            yearly_blocks = 0;
        }
    }
    println!(
        "\nafter {months} months: domain 8 x 8 x {}, {} expansions, filled {} days",
        1usize << app.levels()[2],
        app.expansions(),
        app.filled()
    );

    // Query the archive: total rainfall over the first simulated year.
    let n = app.levels().to_vec();
    let days = app.filled();
    let store = app.store();
    let total_y1 = query::range_sum_standard(store, &n, &[0, 0, 0], &[7, 7, 12 * 32 - 1]);
    let total_all = query::range_sum_standard(store, &n, &[0, 0, 0], &[7, 7, days - 1]);
    println!("grid-total rainfall, year 1:   {total_y1:.1} mm·cells");
    println!("grid-total rainfall, all time: {total_all:.1} mm·cells");

    std::fs::remove_dir_all(&dir).ok();
    println!("done.");
}
